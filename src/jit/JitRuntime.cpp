//===- jit/JitRuntime.cpp - Shims between emitted code and the Machine ----===//
//
// Everything with observable semantics goes through here: memory access,
// div/rem guards, fpToIntSat, calls, profiling, budget faults, and the
// deferred-counter flush walk. Each shim is a thin extern "C" wrapper over
// the exact Machine service both interpreter engines use, so fault messages
// and counting stay byte-identical by construction. The call shims are also
// where the counter hand-off happens: Counters.Total crosses from
// JitRT::TotalCell into the Machine before the callee runs and back after,
// mirroring the fast path's flush/reload pair around calls.
//
// Because compiled code is shared across Machines through the code cache,
// the shims take DecodedFunction-relative operands (argument-pool offsets,
// fault-message indices) instead of baked pointers and resolve them through
// JitRT::CurFn against the running Machine's decoded module.
//
// JitBridge is the single friend seam into Machine; keep all private access
// in it so the surface stays auditable.
//
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"

#include "interp/Machine.h"
#include "support/Arith.h"

using namespace rpcc;

namespace rpcc {

struct JitBridge {
  static uint64_t load(Machine &M, uint64_t Addr, MemType T) {
    return M.loadMem(Addr, T);
  }
  static void store(Machine &M, uint64_t Addr, MemType T, uint64_t V) {
    M.storeMem(Addr, T, V);
  }
  static InterpFault &err(Machine &M) { return M.Err; }
  static OpCounters &counters(Machine &M) { return M.Counters; }
  static std::vector<uint64_t> &argArena(Machine &M) { return M.ArgArena; }
  static std::vector<uint64_t> &regArena(Machine &M) { return M.RegArena; }
  static std::vector<uint8_t> &stackMem(Machine &M) { return M.StackMem; }
  static std::vector<uint8_t> &heapMem(Machine &M) { return M.HeapMem; }
  static const DecodedModule &dm(const Machine &M) { return *M.DM; }
  static size_t numFunctions(const Machine &M) { return M.M.numFunctions(); }
  static uint64_t call(Machine &M, FuncId F, size_t ArgBase, size_t NArgs) {
    return M.callDecodedDyn(F, ArgBase, NArgs);
  }
  static size_t &callDepth(Machine &M) { return M.CallDepth; }
  static const InterpOptions &opts(const Machine &M) { return M.Opts; }
  static bool profiled(const Machine &M) { return M.Prof != nullptr; }
  static JitProgram *jp(Machine &M) { return M.JP.get(); }
  static bool frameBudget(Machine &M, size_t FrameSize) {
    return M.checkFrameBudget(FrameSize);
  }
  static bool deadline(Machine &M) { return M.checkWallDeadline(); }
  static void profile(Machine &M, size_t Slot, uint64_t Flags, uint64_t Addr) {
    if (Flags & DIFlagPtrProf) {
      TagId T = M.resolveAddress(Addr);
      if (T != NoTag)
        Slot += size_t(T) + 1;
    }
    if (Flags & DIFlagStore)
      M.Sink.countStore(Slot);
    else
      M.Sink.countLoad(Slot);
  }
};

} // namespace rpcc

namespace {

/// Two-register return (rax:rdx under the SysV ABI): the value and a
/// did-it-fault flag the emitted code branches on.
struct JitPair {
  uint64_t Val;
  uint64_t Fault;
};

/// Refreshes the cells the emitted code rebases from after a call: the
/// arenas and the heap/stack segments may have reallocated (malloc, callee
/// frames), and the callee may have faulted.
void syncAfterCall(JitRT *RT, Machine &M) {
  RT->TotalCell = JitBridge::counters(M).Total;
  RT->RegArenaData = JitBridge::regArena(M).data();
  RT->StackData = JitBridge::stackMem(M).data();
  RT->HeapData = JitBridge::heapMem(M).data();
  RT->HeapSize = JitBridge::heapMem(M).size();
  RT->StackSize = JitBridge::stackMem(M).size();
  RT->FaultCell = JitBridge::err(M).Active;
}

extern "C" JitPair rpccJitLoad(JitRT *RT, uint64_t Addr, uint64_t MemTy) {
  Machine &M = *RT->M;
  uint64_t V = JitBridge::load(M, Addr, static_cast<MemType>(MemTy));
  return {V, JitBridge::err(M).Active};
}

extern "C" uint64_t rpccJitStore(JitRT *RT, uint64_t Addr, uint64_t V,
                                 uint64_t MemTy) {
  Machine &M = *RT->M;
  JitBridge::store(M, Addr, static_cast<MemType>(MemTy), V);
  return JitBridge::err(M).Active;
}

extern "C" JitPair rpccJitDiv(JitRT *RT, uint64_t A, uint64_t B) {
  int64_t N = static_cast<int64_t>(A), D = static_cast<int64_t>(B);
  if (divFaults(N, D)) {
    JitBridge::err(*RT->M).raise(D == 0
                                     ? "integer division by zero"
                                     : "integer division overflow "
                                       "(INT64_MIN / -1)");
    return {0, 1};
  }
  return {static_cast<uint64_t>(sdiv(N, D)), 0};
}

extern "C" JitPair rpccJitRem(JitRT *RT, uint64_t A, uint64_t B) {
  int64_t N = static_cast<int64_t>(A), D = static_cast<int64_t>(B);
  if (D == 0) {
    JitBridge::err(*RT->M).raise("integer remainder by zero");
    return {0, 1};
  }
  return {static_cast<uint64_t>(srem(N, D)), 0};
}

extern "C" uint64_t rpccJitFpToInt(double V) {
  return static_cast<uint64_t>(fpToIntSat(V));
}

/// Direct native-to-native invocation: when the callee has a body, is
/// already compiled, and profiling is off, the frame is built right here —
/// arguments copy straight from the caller's register window into the
/// callee's, skipping the ArgArena staging the generic path needs, and the
/// step counter never leaves JitRT::TotalCell (every consumer on this path
/// reads the cell; Machine::Counters.Total is resynchronized by whichever
/// boundary next needs it — the generic call shim on the way into a
/// builtin/declined/uncompiled callee, or the top-level execJit on return).
/// The guard order — pending fault, depth, frame budget, deadline — is
/// exactly callDecoded + execJit's, so every fault lands at the same
/// counting point with the same message. Returns false to route the call
/// through the generic path (which also performs lazy compilation).
bool jitCallFast(JitRT *RT, uint64_t Callee, uint64_t ArgPoolOff,
                 uint64_t NArgs, const uint64_t *R, uint64_t *Out) {
  Machine &M = *RT->M;
  const DecodedFunction &DF = JitBridge::dm(M).Funcs[Callee];
  JitProgram *JP = JitBridge::jp(M);
  JitProgram::Entry E;
  if (!DF.HasBody || JitBridge::profiled(M) ||
      !(E = JP->entry(static_cast<FuncId>(Callee))))
    return false;
  if (JitBridge::err(M).Active) { // unreachable from emitted code, but the
    *Out = 0;                     // generic path guards it, so mirror it
    RT->FaultCell = 1;
    return true;
  }
  if (++JitBridge::callDepth(M) > JitBridge::opts(M).MaxCallDepth) {
    JitBridge::err(M).raise("call depth limit exceeded (runaway recursion?)");
    --JitBridge::callDepth(M);
    RT->FaultCell = 1;
    *Out = 0;
    return true;
  }
  if (JitBridge::frameBudget(M, DF.FrameSize) || JitBridge::deadline(M)) {
    --JitBridge::callDepth(M);
    RT->FaultCell = 1;
    *Out = 0;
    return true;
  }
  std::vector<uint8_t> &SM = JitBridge::stackMem(M);
  std::vector<uint64_t> &RA = JitBridge::regArena(M);
  const size_t FrameOff = SM.size();
  SM.resize(FrameOff + DF.FrameSize, 0);
  // The caller's window survives as an index: growing RegArena may move it.
  const size_t CallerBase = static_cast<size_t>(R - RA.data());
  const size_t RegBase = RA.size();
  RA.resize(RegBase + DF.NumRegs, 0);
  const Reg *ArgRegs =
      JitBridge::dm(M).Funcs[RT->CurFn].ArgPool.data() + ArgPoolOff;
  {
    uint64_t *Dst = RA.data() + RegBase;
    const uint64_t *Src = RA.data() + CallerBase;
    const size_t NParams = DF.ParamRegs.size();
    for (size_t I = 0; I != NArgs && I != NParams; ++I)
      Dst[DF.ParamRegs[I]] = Src[ArgRegs[I]];
  }
  RT->RegArenaData = RA.data();
  RT->StackData = SM.data();
  RT->StackSize = SM.size();
  const uint64_t V = E(RT, RegBase, FrameOff);
  // Shrinking never reallocates, so the data cells stay valid; only the
  // stack bound and the fault flag (the callee may have raised through a
  // stub, which bypasses syncAfterCall) need refreshing. The heap cells
  // are current: every path that can move the heap runs syncAfterCall.
  SM.resize(FrameOff);
  RA.resize(RegBase);
  RT->StackSize = FrameOff;
  RT->FaultCell = JitBridge::err(M).Active;
  --JitBridge::callDepth(M);
  *Out = V;
  return true;
}

extern "C" uint64_t rpccJitCall(JitRT *RT, uint64_t Callee,
                                uint64_t ArgPoolOff, uint64_t NArgs,
                                const uint64_t *R) {
  uint64_t Out;
  if (jitCallFast(RT, Callee, ArgPoolOff, NArgs, R, &Out))
    return Out;
  Machine &M = *RT->M;
  JitBridge::counters(M).Total = RT->TotalCell;
  const Reg *ArgRegs =
      JitBridge::dm(M).Funcs[RT->CurFn].ArgPool.data() + ArgPoolOff;
  std::vector<uint64_t> &AA = JitBridge::argArena(M);
  const size_t AB = AA.size();
  AA.resize(AB + NArgs);
  for (uint64_t I = 0; I != NArgs; ++I)
    AA[AB + I] = R[ArgRegs[I]];
  uint64_t V = JitBridge::call(M, static_cast<FuncId>(Callee), AB,
                               static_cast<size_t>(NArgs));
  AA.resize(AB);
  syncAfterCall(RT, M);
  return V;
}

extern "C" uint64_t rpccJitCallInd(JitRT *RT, uint64_t Target,
                                   uint64_t ArgPoolOff, uint64_t NArgs,
                                   const uint64_t *R) {
  Machine &M = *RT->M;
  JitBridge::counters(M).Total = RT->TotalCell;
  if (Target < InterpFuncBase ||
      (Target & ~InterpFuncBase) >= JitBridge::numFunctions(M)) {
    JitBridge::err(M).raise("indirect call through a non-function value");
    RT->FaultCell = 1;
    return 0;
  }
  uint64_t Out;
  if (jitCallFast(RT, Target & ~InterpFuncBase, ArgPoolOff, NArgs, R, &Out))
    return Out;
  const Reg *ArgRegs =
      JitBridge::dm(M).Funcs[RT->CurFn].ArgPool.data() + ArgPoolOff;
  std::vector<uint64_t> &AA = JitBridge::argArena(M);
  const size_t AB = AA.size();
  AA.resize(AB + NArgs);
  for (uint64_t I = 0; I != NArgs; ++I)
    AA[AB + I] = R[ArgRegs[I]];
  uint64_t V = JitBridge::call(M, static_cast<FuncId>(Target & ~InterpFuncBase),
                               AB, static_cast<size_t>(NArgs));
  AA.resize(AB);
  syncAfterCall(RT, M);
  return V;
}

extern "C" uint64_t rpccJitDeadline(JitRT *RT) {
  return JitBridge::deadline(*RT->M);
}

extern "C" void rpccJitStepLimit(JitRT *RT) {
  JitBridge::err(*RT->M).raise("step limit exceeded (infinite loop?)");
}

extern "C" void rpccJitFault(JitRT *RT, uint64_t MsgIdx) {
  Machine &M = *RT->M;
  JitBridge::err(M).raise(JitBridge::dm(M).Funcs[RT->CurFn].FaultMsgs[MsgIdx]);
}

extern "C" void rpccJitProfile(JitRT *RT, uint64_t Slot, uint64_t Flags,
                               uint64_t Addr) {
  JitBridge::profile(*RT->M, static_cast<size_t>(Slot), Flags, Addr);
}

/// Settles the deferred counters of a partial counting segment when a fault
/// unwinds mid-block: replays what the closed-segment static tables would
/// have added for the \p Count steps starting at JitRT::BlockFirst of the
/// current function. The faulting step's inclusion is the caller's business
/// (the emitted fault stubs pass Total - BlockSnap for prologue-complete
/// faults and one less for limit faults), which is what keeps ByOpcode and
/// the Figure 6/7 tallies step-exact across all fault kinds. Total itself
/// is not touched here — r12 stays authoritative until the epilogue.
extern "C" void rpccJitFlushCounters(JitRT *RT, uint64_t Count) {
  const Machine &M = *RT->M;
  const DecodedFunction &DF = JitBridge::dm(M).Funcs[RT->CurFn];
  FunctionCounters &FC = RT->PerFuncBase[RT->CurFn];
  const uint64_t First = RT->BlockFirst;
  for (uint64_t I = 0; I != Count; ++I) {
    const DecodedInst &DI = DF.Insts[First + I];
    ++RT->ByOpcodeBase[static_cast<size_t>(DI.Op)];
    if (DI.Flags & DIFlagLoad) {
      ++RT->LoadsAcc;
      ++FC.Loads;
    } else if (DI.Flags & DIFlagStore) {
      ++RT->StoresAcc;
      ++FC.Stores;
    }
  }
}

} // namespace

void rpcc::initJitRuntime(JitRT &RT, Machine *M) {
  RT.M = M;
  RT.HelpLoad = reinterpret_cast<const void *>(&rpccJitLoad);
  RT.HelpStore = reinterpret_cast<const void *>(&rpccJitStore);
  RT.HelpDiv = reinterpret_cast<const void *>(&rpccJitDiv);
  RT.HelpRem = reinterpret_cast<const void *>(&rpccJitRem);
  RT.HelpFpToInt = reinterpret_cast<const void *>(&rpccJitFpToInt);
  RT.HelpCall = reinterpret_cast<const void *>(&rpccJitCall);
  RT.HelpCallInd = reinterpret_cast<const void *>(&rpccJitCallInd);
  RT.HelpDeadline = reinterpret_cast<const void *>(&rpccJitDeadline);
  RT.HelpStepLimit = reinterpret_cast<const void *>(&rpccJitStepLimit);
  RT.HelpFault = reinterpret_cast<const void *>(&rpccJitFault);
  RT.HelpProfile = reinterpret_cast<const void *>(&rpccJitProfile);
  RT.HelpFlushCounters = reinterpret_cast<const void *>(&rpccJitFlushCounters);
}
