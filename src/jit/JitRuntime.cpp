//===- jit/JitRuntime.cpp - Shims between emitted code and the Machine ----===//
//
// Everything with observable semantics goes through here: memory access,
// div/rem guards, fpToIntSat, calls, profiling, budget faults. Each shim is
// a thin extern "C" wrapper over the exact Machine service both interpreter
// engines use, so fault messages and counting stay byte-identical by
// construction. The call shims are also where the counter hand-off happens:
// Counters.Total crosses from JitRT::TotalCell into the Machine before the
// callee runs and back after, mirroring the fast path's flush/reload pair
// around calls.
//
// JitBridge is the single friend seam into Machine; keep all private access
// in it so the surface stays auditable.
//
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"

#include "interp/Machine.h"
#include "support/Arith.h"

using namespace rpcc;

namespace rpcc {

struct JitBridge {
  static uint64_t load(Machine &M, uint64_t Addr, MemType T) {
    return M.loadMem(Addr, T);
  }
  static void store(Machine &M, uint64_t Addr, MemType T, uint64_t V) {
    M.storeMem(Addr, T, V);
  }
  static InterpFault &err(Machine &M) { return M.Err; }
  static OpCounters &counters(Machine &M) { return M.Counters; }
  static std::vector<uint64_t> &argArena(Machine &M) { return M.ArgArena; }
  static std::vector<uint64_t> &regArena(Machine &M) { return M.RegArena; }
  static std::vector<uint8_t> &stackMem(Machine &M) { return M.StackMem; }
  static size_t numFunctions(const Machine &M) { return M.M.numFunctions(); }
  static uint64_t call(Machine &M, FuncId F, size_t ArgBase, size_t NArgs) {
    return M.callDecodedDyn(F, ArgBase, NArgs);
  }
  static bool deadline(Machine &M) { return M.checkWallDeadline(); }
  static void profile(Machine &M, size_t Slot, uint64_t Flags, uint64_t Addr) {
    if (Flags & DIFlagPtrProf) {
      TagId T = M.resolveAddress(Addr);
      if (T != NoTag)
        Slot += size_t(T) + 1;
    }
    if (Flags & DIFlagStore)
      M.Sink.countStore(Slot);
    else
      M.Sink.countLoad(Slot);
  }
};

} // namespace rpcc

namespace {

/// Two-register return (rax:rdx under the SysV ABI): the value and a
/// did-it-fault flag the emitted code branches on.
struct JitPair {
  uint64_t Val;
  uint64_t Fault;
};

/// Refreshes the cells the emitted code rebases from after a call: the
/// arenas may have reallocated, and the callee may have faulted.
void syncAfterCall(JitRT *RT, Machine &M) {
  RT->TotalCell = JitBridge::counters(M).Total;
  RT->RegArenaData = JitBridge::regArena(M).data();
  RT->StackData = JitBridge::stackMem(M).data();
  RT->FaultCell = JitBridge::err(M).Active;
}

extern "C" JitPair rpccJitLoad(JitRT *RT, uint64_t Addr, uint64_t MemTy) {
  Machine &M = *RT->M;
  uint64_t V = JitBridge::load(M, Addr, static_cast<MemType>(MemTy));
  return {V, JitBridge::err(M).Active};
}

extern "C" uint64_t rpccJitStore(JitRT *RT, uint64_t Addr, uint64_t V,
                                 uint64_t MemTy) {
  Machine &M = *RT->M;
  JitBridge::store(M, Addr, static_cast<MemType>(MemTy), V);
  return JitBridge::err(M).Active;
}

extern "C" JitPair rpccJitDiv(JitRT *RT, uint64_t A, uint64_t B) {
  int64_t N = static_cast<int64_t>(A), D = static_cast<int64_t>(B);
  if (divFaults(N, D)) {
    JitBridge::err(*RT->M).raise(D == 0
                                     ? "integer division by zero"
                                     : "integer division overflow "
                                       "(INT64_MIN / -1)");
    return {0, 1};
  }
  return {static_cast<uint64_t>(sdiv(N, D)), 0};
}

extern "C" JitPair rpccJitRem(JitRT *RT, uint64_t A, uint64_t B) {
  int64_t N = static_cast<int64_t>(A), D = static_cast<int64_t>(B);
  if (D == 0) {
    JitBridge::err(*RT->M).raise("integer remainder by zero");
    return {0, 1};
  }
  return {static_cast<uint64_t>(srem(N, D)), 0};
}

extern "C" uint64_t rpccJitFpToInt(double V) {
  return static_cast<uint64_t>(fpToIntSat(V));
}

extern "C" uint64_t rpccJitCall(JitRT *RT, uint64_t Callee,
                                const Reg *ArgRegs, uint64_t NArgs,
                                const uint64_t *R) {
  Machine &M = *RT->M;
  JitBridge::counters(M).Total = RT->TotalCell;
  std::vector<uint64_t> &AA = JitBridge::argArena(M);
  const size_t AB = AA.size();
  for (uint64_t I = 0; I != NArgs; ++I)
    AA.push_back(R[ArgRegs[I]]);
  uint64_t V = JitBridge::call(M, static_cast<FuncId>(Callee), AB,
                               static_cast<size_t>(NArgs));
  AA.resize(AB);
  syncAfterCall(RT, M);
  return V;
}

extern "C" uint64_t rpccJitCallInd(JitRT *RT, uint64_t Target,
                                   const Reg *ArgRegs, uint64_t NArgs,
                                   const uint64_t *R) {
  Machine &M = *RT->M;
  JitBridge::counters(M).Total = RT->TotalCell;
  if (Target < InterpFuncBase ||
      (Target & ~InterpFuncBase) >= JitBridge::numFunctions(M)) {
    JitBridge::err(M).raise("indirect call through a non-function value");
    RT->FaultCell = 1;
    return 0;
  }
  std::vector<uint64_t> &AA = JitBridge::argArena(M);
  const size_t AB = AA.size();
  for (uint64_t I = 0; I != NArgs; ++I)
    AA.push_back(R[ArgRegs[I]]);
  uint64_t V = JitBridge::call(M, static_cast<FuncId>(Target & ~InterpFuncBase),
                               AB, static_cast<size_t>(NArgs));
  AA.resize(AB);
  syncAfterCall(RT, M);
  return V;
}

extern "C" uint64_t rpccJitDeadline(JitRT *RT) {
  return JitBridge::deadline(*RT->M);
}

extern "C" void rpccJitStepLimit(JitRT *RT) {
  JitBridge::err(*RT->M).raise("step limit exceeded (infinite loop?)");
}

extern "C" void rpccJitFault(JitRT *RT, const std::string *Msg) {
  JitBridge::err(*RT->M).raise(*Msg);
}

extern "C" void rpccJitProfile(JitRT *RT, uint64_t Slot, uint64_t Flags,
                               uint64_t Addr) {
  JitBridge::profile(*RT->M, static_cast<size_t>(Slot), Flags, Addr);
}

} // namespace

void rpcc::initJitRuntime(JitRT &RT, Machine *M) {
  RT.M = M;
  RT.HelpLoad = reinterpret_cast<const void *>(&rpccJitLoad);
  RT.HelpStore = reinterpret_cast<const void *>(&rpccJitStore);
  RT.HelpDiv = reinterpret_cast<const void *>(&rpccJitDiv);
  RT.HelpRem = reinterpret_cast<const void *>(&rpccJitRem);
  RT.HelpFpToInt = reinterpret_cast<const void *>(&rpccJitFpToInt);
  RT.HelpCall = reinterpret_cast<const void *>(&rpccJitCall);
  RT.HelpCallInd = reinterpret_cast<const void *>(&rpccJitCallInd);
  RT.HelpDeadline = reinterpret_cast<const void *>(&rpccJitDeadline);
  RT.HelpStepLimit = reinterpret_cast<const void *>(&rpccJitStepLimit);
  RT.HelpFault = reinterpret_cast<const void *>(&rpccJitFault);
  RT.HelpProfile = reinterpret_cast<const void *>(&rpccJitProfile);
}
