//===- jit/JitRegAlloc.cpp - Block-local host register allocation ---------===//
//
// Counts IL register uses per basic block of the unfused decoded stream and
// assigns the most-used ones to the emitter's free host-register pool. See
// JitRegAlloc.h for the residency contract.
//
//===----------------------------------------------------------------------===//

#include "jit/JitRegAlloc.h"

#include <algorithm>

using namespace rpcc;

namespace {

/// Operand roles of one unfused decoded instruction. Only true register
/// operands count: Call's A is an argument count, branch targets are
/// instruction indices, and call arguments are read from the memory
/// register file by the shim (mapping them buys nothing at a site that
/// forces full writeback anyway).
struct OperandRoles {
  Reg Read1 = NoReg, Read2 = NoReg, Write = NoReg;
};

OperandRoles rolesOf(const DecodedInst &DI) {
  OperandRoles R;
  switch (DI.D) {
  case DecodedOp::Add: case DecodedOp::Sub: case DecodedOp::Mul:
  case DecodedOp::Div: case DecodedOp::Rem: case DecodedOp::And:
  case DecodedOp::Or: case DecodedOp::Xor: case DecodedOp::Shl:
  case DecodedOp::Shr: case DecodedOp::CmpEq: case DecodedOp::CmpNe:
  case DecodedOp::CmpLt: case DecodedOp::CmpLe: case DecodedOp::CmpGt:
  case DecodedOp::CmpGe: case DecodedOp::FAdd: case DecodedOp::FSub:
  case DecodedOp::FMul: case DecodedOp::FDiv: case DecodedOp::FCmpEq:
  case DecodedOp::FCmpNe: case DecodedOp::FCmpLt: case DecodedOp::FCmpLe:
  case DecodedOp::FCmpGt: case DecodedOp::FCmpGe:
    R.Read1 = DI.A; R.Read2 = DI.B; R.Write = DI.Result;
    break;
  case DecodedOp::Neg: case DecodedOp::Not: case DecodedOp::FNeg:
  case DecodedOp::IntToFp: case DecodedOp::FpToInt: case DecodedOp::Copy:
    R.Read1 = DI.A; R.Write = DI.Result;
    break;
  case DecodedOp::LoadI: case DecodedOp::LoadF: case DecodedOp::LoadAddrAbs:
  case DecodedOp::LoadAddrFrame: case DecodedOp::ScalarLoadAbs:
  case DecodedOp::ScalarLoadFrame:
    R.Write = DI.Result;
    break;
  case DecodedOp::ScalarStoreAbs: case DecodedOp::ScalarStoreFrame:
    R.Read1 = DI.A;
    break;
  case DecodedOp::PtrLoad:
    R.Read1 = DI.A; R.Write = DI.Result;
    break;
  case DecodedOp::PtrStore:
    R.Read1 = DI.A; R.Read2 = DI.B;
    break;
  case DecodedOp::Call:
    R.Write = DI.Result;
    break;
  case DecodedOp::CallIndirect:
    R.Read1 = DI.A; R.Write = DI.Result;
    break;
  case DecodedOp::Br: case DecodedOp::RetVal:
    R.Read1 = DI.A;
    break;
  default: // Jmp, RetVoid, Fault, and (never here) fused ops
    break;
  }
  return R;
}

} // namespace

RegAllocResult rpcc::allocateBlockRegs(const DecodedFunction &DF) {
  RegAllocResult Res;
  const size_t NB = DF.BlockStarts.size();
  Res.Blocks.resize(NB);
  if (NB == 0 || DF.NumRegs == 0)
    return Res;

  // Dense per-register tallies, reset between blocks through the touched
  // list so a block costs O(its instructions), not O(NumRegs).
  std::vector<uint32_t> Uses(DF.NumRegs, 0);
  std::vector<uint8_t> Written(DF.NumRegs, 0);
  std::vector<Reg> Touched;
  Touched.reserve(32);

  auto touch = [&](Reg R, bool IsWrite) {
    if (R == NoReg || R >= DF.NumRegs)
      return;
    if (Uses[R] == 0 && Written[R] == 0)
      Touched.push_back(R);
    ++Uses[R];
    if (IsWrite)
      Written[R] = 1;
  };

  const uint32_t N = static_cast<uint32_t>(DF.Insts.size());
  for (size_t B = 0; B != NB; ++B) {
    const uint32_t Lo = DF.BlockStarts[B];
    const uint32_t Hi =
        B + 1 != NB ? DF.BlockStarts[B + 1] : N;
    for (uint32_t I = Lo; I < Hi && I < N; ++I) {
      OperandRoles OR = rolesOf(DF.Insts[I]);
      touch(OR.Read1, false);
      touch(OR.Read2, false);
      touch(OR.Write, true);
    }

    // Keep registers with at least two uses: one use saves exactly the
    // load/store it costs to establish. Rank by use count, register id
    // breaking ties so the assignment is deterministic.
    std::sort(Touched.begin(), Touched.end(), [&](Reg L, Reg R) {
      return Uses[L] != Uses[R] ? Uses[L] > Uses[R] : L < R;
    });
    BlockRegMap &Map = Res.Blocks[B];
    for (Reg R : Touched) {
      if (Map.NumSlots == JitRegPoolSize || Uses[R] < 2)
        break;
      Map.Slots[Map.NumSlots].R = R;
      Map.Slots[Map.NumSlots].Written = Written[R] != 0;
      ++Map.NumSlots;
    }
    Res.ResidentRegs += Map.NumSlots;

    for (Reg R : Touched) {
      Uses[R] = 0;
      Written[R] = 0;
    }
    Touched.clear();
  }
  return Res;
}
