//===- jit/JitRegAlloc.h - Block-local host register allocation -*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps the hottest IL registers of each basic block into the free
/// caller-saved host registers, completing at the machine level what
/// register promotion starts at the IL level: a promoted scalar should not
/// be re-materialized through a load/store pair against the in-memory
/// register file on every use.
///
/// The scope is deliberately a single block (plus, in the emitter, the back
/// edge of single-block loops, which keeps the residency live across
/// iterations): residency is established by loading every mapped register
/// at block entry and retired by storing the statically-written ones at
/// block exit and before every call/shim that can observe or modify the
/// register file. Between those points the memory file may be stale — but
/// no interpreter-observable event can happen between them, so the fast
/// path could never tell the difference.
///
/// The allocation itself is a per-block popularity contest, not a lifetime
/// analysis: count uses, keep every register used at least twice, hand the
/// top ones a host register each. That is exactly the right cost model for
/// a template JIT — the win is proportional to uses replaced, and a
/// register used once costs as much to establish as it saves.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_JIT_JITREGALLOC_H
#define RPCC_JIT_JITREGALLOC_H

#include "interp/Decode.h"

#include <cstdint>
#include <vector>

namespace rpcc {

/// Number of host registers the emitter leaves free for residency: the
/// caller-saved set minus the scratch registers the templates compute in
/// (rax/rcx/rdx and the SysV shim argument path reuse those).
inline constexpr unsigned JitRegPoolSize = 6;

/// One block's residency decision: up to JitRegPoolSize IL registers, each
/// assigned a pool slot (the emitter owns the slot -> host register table).
struct BlockRegMap {
  struct SlotInfo {
    Reg R = NoReg;
    /// Statically written inside the block: the slot must be stored back to
    /// the memory register file at block exit and shim writeback points.
    /// (Storing a mapped-but-unwritten register would also be sound — it
    /// holds the loaded value — this flag only trims silent stores.)
    bool Written = false;
  };
  SlotInfo Slots[JitRegPoolSize];
  uint8_t NumSlots = 0;

  /// Pool slot caching \p R in this block, or -1 when it stays in memory.
  /// Linear over <= 6 entries — faster than any map at this size.
  int slotOf(Reg R) const {
    for (unsigned S = 0; S != NumSlots; ++S)
      if (Slots[S].R == R)
        return static_cast<int>(S);
    return -1;
  }
};

/// Per-function result, parallel to DecodedFunction::BlockStarts.
struct RegAllocResult {
  std::vector<BlockRegMap> Blocks;
  /// Total slots assigned across all blocks (the jit.regalloc_resident_regs
  /// metric's contribution from this function).
  size_t ResidentRegs = 0;
};

/// Decides residency for every block of \p DF (which must be decoded
/// unfused — operand roles are enumerated per base DecodedOp).
RegAllocResult allocateBlockRegs(const DecodedFunction &DF);

} // namespace rpcc

#endif // RPCC_JIT_JITREGALLOC_H
