//===- alias/TagRefine.h - Opcode strengthening ------------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Moves memory operations up Table 1's hierarchy once analysis has shrunk
/// their tag sets: a pointer-based load/store whose tag set is a single
/// scalar object becomes an sLoad/sStore (the address can only be that
/// scalar), and a load whose tags are all read-only storage becomes a cLoad.
/// This is what makes the promotion equations see formerly pointer-based
/// scalar references as explicit ones.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_ALIAS_TAGREFINE_H
#define RPCC_ALIAS_TAGREFINE_H

#include "ir/Module.h"

namespace rpcc {

struct StrengthenStats {
  unsigned LoadsToScalar = 0;  ///< PLD -> SLD
  unsigned StoresToScalar = 0; ///< PST -> SST
  unsigned LoadsToConst = 0;   ///< PLD -> CLD
};

/// Rewrites opcodes in place. Requires tag sets to be populated (runModRef).
StrengthenStats strengthenOpcodes(Module &M);

/// Counts the static mix of memory opcodes in \p M (for the Table 1
/// experiment): [iLoad, cLoad, sLoad, sStore, Load, Store].
struct OpcodeMix {
  uint64_t ILoad = 0, CLoad = 0, SLoad = 0, SStore = 0, Load = 0, Store = 0;
};
OpcodeMix countOpcodeMix(const Module &M);

} // namespace rpcc

#endif // RPCC_ALIAS_TAGREFINE_H
