//===- alias/ModRef.cpp ---------------------------------------------------===//

#include "alias/ModRef.h"

#include "analysis/CallGraph.h"

#include <cassert>

using namespace rpcc;

namespace {

class ModRefAnalyzer {
public:
  ModRefAnalyzer(Module &M, const PointsToResult *PT) : M(M), PT(PT) {}

  ModRefSummaries run() {
    buildUniverse();
    if (PT)
      resolveIndirectCallees();
    fillPointerOpTagSets();

    // The call graph is built after indirect-callee resolution so its edges
    // benefit from the points-to refinement.
    CallGraph CG(M);
    computeVisibility(CG);
    refillLocalVisibility();

    summarize(CG);
    annotateCallSites(CG);
    return std::move(Result);
  }

private:
  // -- Universes -------------------------------------------------------------
  void buildUniverse() {
    for (const Tag &T : M.tags())
      if (T.AddressTaken && T.Kind != TagKind::Func)
        Addressed.insert(T.Id);
  }

  /// Functions reachable from F (including F) in the call graph. Local tags
  /// of F are visible exactly in this set.
  void computeVisibility(const CallGraph &CG) {
    const size_t N = M.numFunctions();
    Reach.assign(N, std::vector<bool>(N, false));
    for (FuncId F = 0; F != N; ++F) {
      std::vector<FuncId> Work{F};
      Reach[F][F] = true;
      while (!Work.empty()) {
        FuncId Cur = Work.back();
        Work.pop_back();
        for (FuncId C : CG.callees(Cur))
          if (!Reach[F][C]) {
            Reach[F][C] = true;
            Work.push_back(C);
          }
      }
    }
  }

  /// The conservative may-reference set for code inside function \p G:
  /// addressed globals/heap plus addressed locals whose owner can (directly
  /// or transitively) reach G.
  TagSet visibleSet(FuncId G) {
    TagSet Out;
    for (TagId T : Addressed) {
      const Tag &Tg = M.tags().tag(T);
      if (Tg.Kind == TagKind::Local) {
        if (Tg.Owner < Reach.size() && Reach[Tg.Owner][G])
          Out.insert(T);
      } else {
        Out.insert(T);
      }
    }
    return Out;
  }

  void resolveIndirectCallees() {
    for (FuncId F = 0; F != M.numFunctions(); ++F) {
      Function *Fn = M.function(F);
      if (Fn->isBuiltin())
        continue;
      for (auto &B : Fn->blocks())
        for (auto &IP : B->insts()) {
          Instruction &I = *IP;
          if (I.Op != Opcode::CallIndirect)
            continue;
          I.IndirectCallees.clear();
          for (TagId T : PT->regPts(F, I.Ops[0])) {
            const Tag &Tg = M.tags().tag(T);
            if (Tg.Kind == TagKind::Func)
              I.IndirectCallees.push_back(Tg.Fn);
          }
        }
    }
  }

  /// Assigns tag sets to pointer-based memory operations. With points-to
  /// information the set is pts(address); otherwise every op keeps whatever
  /// exact set the front end produced or, failing that, the conservative
  /// visible-addressed set (installed in refillLocalVisibility once
  /// visibility is known).
  void fillPointerOpTagSets() {
    if (!PT)
      return;
    for (FuncId F = 0; F != M.numFunctions(); ++F) {
      Function *Fn = M.function(F);
      if (Fn->isBuiltin())
        continue;
      for (auto &B : Fn->blocks())
        for (auto &IP : B->insts()) {
          Instruction &I = *IP;
          if (!isPointerMemOp(I.Op))
            continue;
          TagSet Refined = PT->derefTargets(F, I.Ops[0]);
          if (I.Tags.empty() || Refined.size() < I.Tags.size())
            I.Tags = std::move(Refined);
        }
    }
  }

  void refillLocalVisibility() {
    for (FuncId F = 0; F != M.numFunctions(); ++F) {
      Function *Fn = M.function(F);
      if (Fn->isBuiltin())
        continue;
      TagSet Visible; // computed lazily per function
      bool VisibleComputed = false;
      for (auto &B : Fn->blocks())
        for (auto &IP : B->insts()) {
          Instruction &I = *IP;
          if (!isPointerMemOp(I.Op) || !I.Tags.empty())
            continue;
          if (!VisibleComputed) {
            Visible = visibleSet(F);
            VisibleComputed = true;
          }
          I.Tags = Visible;
        }
    }
  }

  // -- Summaries ---------------------------------------------------------------
  /// Local (intra-function) MOD/REF of one function, not counting calls.
  void localEffects(FuncId F, TagSet &Mod, TagSet &Ref) {
    const Function *Fn = M.function(F);
    for (const auto &B : Fn->blocks())
      for (const auto &IP : B->insts()) {
        const Instruction &I = *IP;
        switch (I.Op) {
        case Opcode::ScalarLoad:
          Ref.insert(I.Tag);
          break;
        case Opcode::ScalarStore:
          Mod.insert(I.Tag);
          break;
        case Opcode::Load:
        case Opcode::ConstLoad:
          Ref.unionWith(I.Tags);
          break;
        case Opcode::Store:
          Mod.unionWith(I.Tags);
          break;
        default:
          break;
        }
      }
  }

  /// Effects of one call edge to a builtin, at call site \p I in caller G.
  void builtinEffects(FuncId G, const Instruction &I, const Function &Callee,
                      TagSet &Mod, TagSet &Ref) {
    switch (Callee.builtin()) {
    case BuiltinKind::PrintStr: {
      // Reads the pointed-to bytes.
      if (PT) {
        Ref.unionWith(PT->derefTargets(G, I.Ops.back()));
      } else {
        Ref.unionWith(visibleSet(G));
      }
      break;
    }
    default:
      // malloc/free/print_int/.../pow touch no named storage.
      break;
    }
  }

  void summarize(const CallGraph &CG) {
    const size_t N = M.numFunctions();
    Result.Mod.assign(N, TagSet());
    Result.Ref.assign(N, TagSet());

    // SCCs arrive callees-first.
    for (const auto &Scc : CG.sccs()) {
      TagSet Mod, Ref;
      for (FuncId F : Scc) {
        const Function *Fn = M.function(F);
        if (Fn->isBuiltin())
          continue;
        localEffects(F, Mod, Ref);
        for (FuncId C : CG.callees(F)) {
          if (CG.sccOf(C) == CG.sccOf(F))
            continue; // same SCC: shares this set
          Mod.unionWith(Result.Mod[C]);
          Ref.unionWith(Result.Ref[C]);
        }
      }
      for (FuncId F : Scc) {
        Result.Mod[F] = Mod;
        Result.Ref[F] = Ref;
      }
    }
  }

  void annotateCallSites(const CallGraph &CG) {
    for (FuncId F = 0; F != M.numFunctions(); ++F) {
      Function *Fn = M.function(F);
      if (Fn->isBuiltin())
        continue;
      for (auto &B : Fn->blocks())
        for (auto &IP : B->insts()) {
          Instruction &I = *IP;
          if (!isCallOp(I.Op))
            continue;
          I.Mods.clear();
          I.Refs.clear();
          auto AddCallee = [&](FuncId C) {
            const Function *CalleeF = M.function(C);
            if (CalleeF->isBuiltin()) {
              builtinEffects(F, I, *CalleeF, I.Mods, I.Refs);
              return;
            }
            I.Mods.unionWith(Result.Mod[C]);
            I.Refs.unionWith(Result.Ref[C]);
          };
          if (I.Op == Opcode::Call) {
            AddCallee(I.Callee);
          } else if (!I.IndirectCallees.empty()) {
            for (FuncId C : I.IndirectCallees)
              AddCallee(C);
          } else {
            for (FuncId C : CG.addressedFunctions())
              AddCallee(C);
          }
        }
    }
  }

  Module &M;
  const PointsToResult *PT;
  TagSet Addressed;
  std::vector<std::vector<bool>> Reach;
  ModRefSummaries Result;
};

} // namespace

ModRefSummaries rpcc::runModRef(Module &M, const PointsToResult *PT) {
  return ModRefAnalyzer(M, PT).run();
}
