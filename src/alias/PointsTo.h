//===- alias/PointsTo.h - Whole-program points-to analysis ------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program, context-insensitive points-to analysis in the style the
/// paper describes (following Ruf [18]): "We analyze the entire program at
/// once... For each name, the analyzer determines the set of tags to which
/// it may point... Pointer values are propagated through the program using a
/// worklist algorithm. Non-local memory is modeled with explicit names...
/// Heap memory is modeled with a single name for each call-site... The
/// analysis is context-insensitive. The effects of recursion are
/// approximated."
///
/// Deliberate substitution (documented in DESIGN.md §3): the original runs
/// flow-sensitively over SSA names; we run flow-insensitively over virtual
/// registers. Frontend-generated expression temporaries are single-
/// assignment names already, so precision loss is limited to multi-assigned
/// user variables — and the paper's own result is that promotion is largely
/// insensitive to this extra precision.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_ALIAS_POINTSTO_H
#define RPCC_ALIAS_POINTSTO_H

#include "ir/Module.h"

#include <vector>

namespace rpcc {

class PointsToResult {
public:
  /// Points-to set of register \p R in function \p F. May be empty for
  /// non-pointer registers. Sets live in dense per-function tables indexed
  /// by register number (and MemSets by tag id): both id spaces are dense
  /// and known up front, so the solver's inner loop indexes vectors instead
  /// of hashing (function, register) keys.
  const TagSet &regPts(FuncId F, Reg R) const {
    if (F >= RegSets.size() || R >= RegSets[F].size())
      return Empty;
    return RegSets[F][R];
  }

  /// Points-to set of the pointers stored in memory location \p T.
  const TagSet &memPts(TagId T) const {
    return T < MemSets.size() ? MemSets[T] : Empty;
  }

  /// Tags a dereference of \p R in \p F may touch: regPts with function
  /// tags filtered out (data accesses cannot touch code), or the whole
  /// addressed universe when the pointer is unknown. Note that known
  /// targets may include tags that are not address-taken (direct array and
  /// struct references reach here through LoadAddr-derived addresses).
  TagSet derefTargets(FuncId F, Reg R) const;

  /// All addressed, non-function tags (the conservative universe).
  const TagSet &addressedUniverse() const { return Universe; }

private:
  friend class PointsToSolver;
  std::vector<std::vector<TagSet>> RegSets; ///< [FuncId][Reg]
  std::vector<TagSet> MemSets;              ///< [TagId]
  TagSet Universe;
  TagSet FuncTags;
  TagSet Empty;
};

/// Runs the analysis. \p M is not modified.
PointsToResult runPointsTo(const Module &M);

} // namespace rpcc

#endif // RPCC_ALIAS_POINTSTO_H
