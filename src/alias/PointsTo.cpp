//===- alias/PointsTo.cpp -------------------------------------------------===//

#include "alias/PointsTo.h"

#include <cassert>

using namespace rpcc;

TagSet PointsToResult::derefTargets(FuncId F, Reg R) const {
  const TagSet &P = regPts(F, R);
  if (P.empty())
    return Universe; // unknown pointer: be conservative
  TagSet Out;
  for (TagId T : P)
    if (!FuncTags.contains(T)) // data ops never touch code
      Out.insert(T);
  if (Out.empty())
    return Universe; // only code targets: treat as unknown
  return Out;
}

namespace rpcc {

/// Flow-insensitive subset-constraint solver, resolved by sweeping all
/// instructions to a fixed point. Program sizes in this project are small
/// (thousands of instructions), so sweeps converge in a handful of passes.
class PointsToSolver {
public:
  explicit PointsToSolver(const Module &M) : M(M) {}

  PointsToResult solve() {
    // Size the dense tables up front: both id spaces are fixed for the
    // whole solve, so every later access is a plain index.
    R.RegSets.resize(M.numFunctions());
    for (FuncId F = 0; F != M.numFunctions(); ++F)
      R.RegSets[F].resize(M.function(F)->numRegs());
    R.MemSets.resize(M.tags().size());
    RetSets.resize(M.numFunctions());

    // Universe: every addressed non-function tag.
    for (const Tag &T : M.tags()) {
      if (T.AddressTaken && T.Kind != TagKind::Func)
        R.Universe.insert(T.Id);
      if (T.Kind == TagKind::Func)
        R.FuncTags.insert(T.Id);
    }

    bool Changed = true;
    unsigned Rounds = 0;
    while (Changed) {
      Changed = false;
      ++Rounds;
      assert(Rounds < 10000 && "points-to failed to converge");
      for (FuncId F = 0; F != M.numFunctions(); ++F) {
        const Function *Fn = M.function(F);
        if (Fn->isBuiltin())
          continue;
        for (const auto &B : Fn->blocks())
          for (const auto &IP : B->insts())
            Changed |= apply(F, *IP);
      }
    }
    return std::move(R);
  }

private:
  TagSet &regSet(FuncId F, Reg Rg) {
    assert(Rg < R.RegSets[F].size() && "register out of range");
    return R.RegSets[F][Rg];
  }
  TagSet &memSet(TagId T) {
    assert(T < R.MemSets.size() && "tag out of range");
    return R.MemSets[T];
  }
  TagSet &retSet(FuncId F) { return RetSets[F]; }

  /// Targets of a dereference through \p Rg (conservative on unknown).
  /// Known targets include non-addressed tags reached via direct LoadAddr
  /// chains (array indexing, struct fields).
  TagSet targets(FuncId F, Reg Rg) {
    const TagSet &P = regSet(F, Rg);
    if (P.empty())
      return R.Universe;
    TagSet Out;
    for (TagId T : P)
      if (!R.FuncTags.contains(T))
        Out.insert(T);
    if (Out.empty())
      return R.Universe;
    return Out;
  }

  bool bindCall(FuncId Caller, const Instruction &I, FuncId Callee,
                size_t ArgStart) {
    const Function *CalleeF = M.function(Callee);
    bool Changed = false;
    if (CalleeF->isBuiltin()) {
      if (CalleeF->builtin() == BuiltinKind::Malloc && I.hasResult() &&
          I.Tag != NoTag)
        Changed |= regSet(Caller, I.Result).insert(I.Tag);
      return Changed;
    }
    const auto &Params = CalleeF->paramRegs();
    for (size_t A = ArgStart; A != I.Ops.size(); ++A) {
      size_t PIdx = A - ArgStart;
      if (PIdx >= Params.size())
        break;
      Changed |=
          regSet(Callee, Params[PIdx]).unionWith(regSet(Caller, I.Ops[A]));
    }
    if (I.hasResult())
      Changed |= regSet(Caller, I.Result).unionWith(retSet(Callee));
    return Changed;
  }

  bool apply(FuncId F, const Instruction &I) {
    switch (I.Op) {
    case Opcode::LoadAddr:
      return regSet(F, I.Result).insert(I.Tag);
    case Opcode::Copy:
      return regSet(F, I.Result).unionWith(regSet(F, I.Ops[0]));
    case Opcode::Add:
    case Opcode::Sub: {
      // Pointer arithmetic: the result points wherever either side points.
      bool C = regSet(F, I.Result).unionWith(regSet(F, I.Ops[0]));
      C |= regSet(F, I.Result).unionWith(regSet(F, I.Ops[1]));
      return C;
    }
    case Opcode::ScalarLoad:
      return regSet(F, I.Result).unionWith(memSet(I.Tag));
    case Opcode::ScalarStore:
      return memSet(I.Tag).unionWith(regSet(F, I.Ops[0]));
    case Opcode::Load:
    case Opcode::ConstLoad: {
      bool C = false;
      for (TagId T : targets(F, I.Ops[0]))
        C |= regSet(F, I.Result).unionWith(memSet(T));
      return C;
    }
    case Opcode::Store: {
      const TagSet &Val = regSet(F, I.Ops[1]);
      if (Val.empty())
        return false;
      bool C = false;
      for (TagId T : targets(F, I.Ops[0]))
        C |= memSet(T).unionWith(Val);
      return C;
    }
    case Opcode::Call:
      return bindCall(F, I, I.Callee, 0);
    case Opcode::CallIndirect: {
      bool C = false;
      for (FuncId Callee : indirectTargets(F, I))
        C |= bindCall(F, I, Callee, 1);
      return C;
    }
    case Opcode::Ret:
      if (!I.Ops.empty())
        return retSet(F).unionWith(regSet(F, I.Ops[0]));
      return false;
    default:
      return false;
    }
  }

  std::vector<FuncId> indirectTargets(FuncId F, const Instruction &I) {
    std::vector<FuncId> Out;
    const TagSet &P = regSet(F, I.Ops[0]);
    bool AnyFunc = false;
    for (TagId T : P) {
      const Tag &Tg = M.tags().tag(T);
      if (Tg.Kind == TagKind::Func) {
        AnyFunc = true;
        Out.push_back(Tg.Fn);
      }
    }
    if (!AnyFunc) {
      // Unknown callee: any addressed function.
      for (const Tag &T : M.tags())
        if (T.Kind == TagKind::Func && T.AddressTaken)
          Out.push_back(T.Fn);
    }
    return Out;
  }

  const Module &M;
  PointsToResult R;
  std::vector<TagSet> RetSets; ///< [FuncId]
};

} // namespace rpcc

PointsToResult rpcc::runPointsTo(const Module &M) {
  return PointsToSolver(M).solve();
}
