//===- alias/ModRef.h - Interprocedural MOD/REF analysis --------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's MOD/REF analyzer (§4). It limits the tag sets of pointer-
/// based memory operations in two ways: "only tags that have had their
/// address taken are placed in the tag sets", and "it only places the tag of
/// a local variable into the tag sets of memory operations that appear in
/// descendants of the function that creates the local variable. Indirect
/// calls are conservatively assumed to target any addressed function."
/// Call-site summaries are computed per call-graph SCC in reverse
/// topological order, so "the tag set of any called function not in the
/// current SCC has already been calculated."
///
/// When a PointsToResult is supplied, pointer-op tag sets and print_str
/// reference sets come from the points-to solution instead of the
/// conservative visible-addressed set, and indirect call edges use the
/// resolved callee lists — this is the paper's "MOD/REF analysis is then
/// repeated, using the new tag sets".
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_ALIAS_MODREF_H
#define RPCC_ALIAS_MODREF_H

#include "alias/PointsTo.h"
#include "ir/Module.h"

#include <vector>

namespace rpcc {

/// Per-function side-effect summaries, exposed for tests and tools.
struct ModRefSummaries {
  /// Indexed by FuncId.
  std::vector<TagSet> Mod, Ref;
};

/// Runs the analysis and rewrites \p M in place:
///  * pointer-based memory ops with unknown (empty) tag sets receive their
///    may-reference sets,
///  * every call instruction receives MOD and REF tag lists,
///  * indirect call sites receive their resolved callee lists when \p PT is
///    supplied.
ModRefSummaries runModRef(Module &M, const PointsToResult *PT = nullptr);

} // namespace rpcc

#endif // RPCC_ALIAS_MODREF_H
