//===- alias/TagRefine.cpp ------------------------------------------------===//

#include "alias/TagRefine.h"

using namespace rpcc;

StrengthenStats rpcc::strengthenOpcodes(Module &M) {
  StrengthenStats Stats;
  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    Function *Fn = M.function(static_cast<FuncId>(FI));
    if (Fn->isBuiltin())
      continue;
    for (auto &B : Fn->blocks()) {
      for (auto &IP : B->insts()) {
        Instruction &I = *IP;
        if (I.Op != Opcode::Load && I.Op != Opcode::Store)
          continue;
        TagId Single = I.Tags.singleton();
        if (Single != NoTag) {
          const Tag &T = M.tags().tag(Single);
          // A singleton scalar object: the address can only be &T, so the
          // general op is really a scalar op. The access width must agree
          // with the scalar's own width, and a local's scalar ops resolve
          // against the executing function's frame, so another function's
          // local must stay a pointer-based access.
          bool ForeignLocal =
              T.Kind == TagKind::Local && T.Owner != Fn->id();
          if (T.IsScalar && T.Kind != TagKind::Heap && !ForeignLocal &&
              T.ValTy == I.MemTy) {
            if (I.Op == Opcode::Load) {
              I.Op = Opcode::ScalarLoad;
              I.Ops.clear(); // drop the address operand
              ++Stats.LoadsToScalar;
            } else {
              I.Op = Opcode::ScalarStore;
              I.Ops.erase(I.Ops.begin()); // drop the address operand
              ++Stats.StoresToScalar;
            }
            I.Tag = Single;
            I.Tags.clear();
            continue;
          }
        }
        // All-read-only loads become cLoads (invariant but unknown value).
        if (I.Op == Opcode::Load && !I.Tags.empty()) {
          bool AllRO = true;
          for (TagId T : I.Tags)
            if (!M.tags().tag(T).ReadOnly)
              AllRO = false;
          if (AllRO) {
            I.Op = Opcode::ConstLoad;
            ++Stats.LoadsToConst;
          }
        }
      }
    }
  }
  return Stats;
}

OpcodeMix rpcc::countOpcodeMix(const Module &M) {
  OpcodeMix Mix;
  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    const Function *Fn = M.function(static_cast<FuncId>(FI));
    if (Fn->isBuiltin())
      continue;
    for (const auto &B : Fn->blocks())
      for (const auto &IP : B->insts())
        switch (IP->Op) {
        case Opcode::LoadI:
        case Opcode::LoadF:
          ++Mix.ILoad;
          break;
        case Opcode::ConstLoad:
          ++Mix.CLoad;
          break;
        case Opcode::ScalarLoad:
          ++Mix.SLoad;
          break;
        case Opcode::ScalarStore:
          ++Mix.SStore;
          break;
        case Opcode::Load:
          ++Mix.Load;
          break;
        case Opcode::Store:
          ++Mix.Store;
          break;
        default:
          break;
        }
  }
  return Mix;
}
