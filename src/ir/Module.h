//===- ir/Module.h - Whole-program IL container -----------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef RPCC_IR_MODULE_H
#define RPCC_IR_MODULE_H

#include "ir/Function.h"
#include "ir/Tag.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace rpcc {

/// Initial contents of one global tag. Empty bytes mean zero-initialized.
struct GlobalInit {
  TagId Tag = NoTag;
  std::vector<uint8_t> Bytes;
};

/// A whole program: functions, the tag table, and global initializers.
/// The paper's analyses are whole-program ("We analyze the entire program at
/// once"), so the module is the unit every interprocedural pass consumes.
class Module {
public:
  Function *addFunction(std::string Name);

  /// Registers the standard builtins (malloc, free, print_*, math). Called
  /// by the frontend; harmless to call twice.
  void declareBuiltins();

  FuncId lookup(const std::string &Name) const {
    auto It = FuncByName.find(Name);
    return It == FuncByName.end() ? NoFunc : It->second;
  }

  Function *function(FuncId Id) {
    assert(Id < Funcs.size() && "invalid function id");
    return Funcs[Id].get();
  }
  const Function *function(FuncId Id) const {
    assert(Id < Funcs.size() && "invalid function id");
    return Funcs[Id].get();
  }
  size_t numFunctions() const { return Funcs.size(); }

  TagTable &tags() { return Tags; }
  const TagTable &tags() const { return Tags; }

  /// Local/Spill tags owned by function \p F, ascending by tag id (see
  /// TagTable::ownedBy).
  const std::vector<TagId> &tagsOwnedBy(FuncId F) const {
    return Tags.ownedBy(F);
  }

  std::vector<GlobalInit> &globals() { return Globals; }
  const std::vector<GlobalInit> &globals() const { return Globals; }

  /// Adds a zero- or byte-initialized global for \p Tag.
  void addGlobal(TagId Tag, std::vector<uint8_t> Bytes = {}) {
    Globals.push_back(GlobalInit{Tag, std::move(Bytes)});
  }

  /// Deep copy of the whole program. Function, block, register, and tag ids
  /// are dense indices, so the clone preserves them all verbatim: every
  /// function (blocks, instructions, tag lists, call MOD/REF summaries),
  /// the tag table with its per-owner indexes, the name lookup map, and the
  /// global initializers. The clone aliases no storage with this module —
  /// mutating either side never affects the other — which is what lets the
  /// compile cache hand forks of one analyzed module to concurrent compile
  /// jobs.
  std::unique_ptr<Module> clone() const;

private:
  std::vector<std::unique_ptr<Function>> Funcs;
  std::unordered_map<std::string, FuncId> FuncByName;
  TagTable Tags;
  std::vector<GlobalInit> Globals;
};

} // namespace rpcc

#endif // RPCC_IR_MODULE_H
