//===- ir/BasicBlock.cpp --------------------------------------------------===//
// BasicBlock is header-only; this file anchors the translation unit.

#include "ir/BasicBlock.h"
