//===- ir/Verifier.h - IL structural checker --------------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef RPCC_IR_VERIFIER_H
#define RPCC_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>

namespace rpcc {

/// Checks structural invariants of \p F: every block ends in exactly one
/// terminator, branch targets are in range, registers are allocated, scalar
/// memory operations name scalar tags, call arities match callees, and phis
/// sit at block heads. On failure appends diagnostics to \p Err.
bool verifyFunction(const Module &M, const Function &F, std::string &Err);

/// Verifies every non-builtin function in \p M.
bool verifyModule(const Module &M, std::string &Err);

} // namespace rpcc

#endif // RPCC_IR_VERIFIER_H
