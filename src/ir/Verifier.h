//===- ir/Verifier.h - IL structural checker --------------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef RPCC_IR_VERIFIER_H
#define RPCC_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>

namespace rpcc {

struct VerifyOptions {
  /// Also require every operand register to be definitely assigned (by a
  /// param or an earlier instruction on every path) before use. Off by
  /// default: the IL defines registers to start at 0, and the frontend
  /// legitimately emits reads of never-written registers for uninitialized
  /// locals ("int x; return x;"). The fuzzer's corruption oracle and
  /// IL-fixture tests turn it on to catch dangling-operand rewrites.
  bool CheckDefBeforeUse = false;
};

/// Checks structural invariants of \p F: every block ends in exactly one
/// terminator, branch targets are in range, registers are allocated, operand
/// and result arity matches each opcode, scalar memory operations name scalar
/// tags, tag lists and call MOD/REF summaries name existing tags, call
/// arities match callees, and phis sit at block heads. On failure appends
/// diagnostics to \p Err.
bool verifyFunction(const Module &M, const Function &F, std::string &Err,
                    const VerifyOptions &Opts = {});

/// Verifies every non-builtin function in \p M, plus the module-level
/// tables: Local/Spill tag owners and Func tag targets must name existing
/// functions, and global initializers must name existing tags. These are
/// the references printModule and the layout code chase, so a dangling one
/// must be a diagnostic here, never an assert downstream.
bool verifyModule(const Module &M, std::string &Err,
                  const VerifyOptions &Opts = {});

} // namespace rpcc

#endif // RPCC_IR_VERIFIER_H
