//===- ir/Tag.h - Abstract memory location tags ----------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tags are textual names for abstract memory locations, exactly as in the
/// paper's IL: "Each memory operation has an associated list of tags; these
/// are textual names that identify the memory locations that can be used by
/// the operation." A tag stands for a whole object: a global scalar, a global
/// array, a local whose address escapes, one heap allocation site, a function
/// (for function pointers), or an allocator-introduced spill slot.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_IR_TAG_H
#define RPCC_IR_TAG_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace rpcc {

using TagId = uint32_t;
inline constexpr TagId NoTag = ~TagId(0);

using FuncId = uint32_t;
inline constexpr FuncId NoFunc = ~FuncId(0);

/// Width of a memory access or scalar cell.
enum class MemType : uint8_t { I8, I64, F64 };

/// Size in bytes of a MemType cell.
inline uint32_t memTypeSize(MemType T) { return T == MemType::I8 ? 1 : 8; }

/// What kind of storage a tag names.
enum class TagKind : uint8_t {
  Global, ///< file-scope variable
  Local,  ///< address-taken local or formal parameter storage
  Heap,   ///< one allocation call site (the paper's heap model)
  Func,   ///< a function whose address is taken
  Spill   ///< spill slot introduced by the register allocator
};

/// One abstract memory location.
struct Tag {
  TagId Id = NoTag;
  std::string Name;
  TagKind Kind = TagKind::Global;
  /// Owning function for Local/Spill tags; NoFunc otherwise.
  FuncId Owner = NoFunc;
  /// For Func tags, the function this tag names.
  FuncId Fn = NoFunc;
  /// True once some LoadAddr takes this tag's address. Only addressed tags
  /// can appear in pointer-based tag sets (paper section 4).
  bool AddressTaken = false;
  /// True for read-only storage (const globals, string literals).
  bool ReadOnly = false;
  /// True if the tag names a single scalar cell (promotion candidate).
  bool IsScalar = false;
  /// Element type of a scalar cell, or of array elements.
  MemType ValTy = MemType::I64;
  /// Object size in bytes.
  uint32_t SizeBytes = 8;
};

/// A sorted, duplicate-free set of tag ids; the "tag list" attached to
/// pointer-based memory operations and to call-site MOD/REF summaries.
class TagSet {
public:
  TagSet() = default;
  TagSet(std::initializer_list<TagId> Ids) {
    for (TagId T : Ids)
      insert(T);
  }

  bool empty() const { return Ids.empty(); }
  size_t size() const { return Ids.size(); }

  bool contains(TagId T) const {
    return std::binary_search(Ids.begin(), Ids.end(), T);
  }

  /// Inserts \p T; returns true if it was not already present.
  bool insert(TagId T) {
    auto It = std::lower_bound(Ids.begin(), Ids.end(), T);
    if (It != Ids.end() && *It == T)
      return false;
    Ids.insert(It, T);
    return true;
  }

  /// Union-assign; returns true if this set grew.
  bool unionWith(const TagSet &O) {
    bool Changed = false;
    for (TagId T : O.Ids)
      Changed |= insert(T);
    return Changed;
  }

  void clear() { Ids.clear(); }

  /// When the set is a singleton, returns its element; NoTag otherwise.
  TagId singleton() const { return Ids.size() == 1 ? Ids[0] : NoTag; }

  bool operator==(const TagSet &O) const { return Ids == O.Ids; }
  bool operator!=(const TagSet &O) const { return !(*this == O); }

  std::vector<TagId>::const_iterator begin() const { return Ids.begin(); }
  std::vector<TagId>::const_iterator end() const { return Ids.end(); }

private:
  std::vector<TagId> Ids;
};

/// Owns all tags of a module and hands out dense ids.
class TagTable {
public:
  TagId createGlobal(std::string Name, uint32_t Size, bool Scalar,
                     MemType ValTy, bool ReadOnly = false);
  TagId createLocal(std::string Name, FuncId Owner, uint32_t Size, bool Scalar,
                    MemType ValTy);
  TagId createHeap(std::string Name);
  TagId createFunc(std::string Name, FuncId Fn);
  TagId createSpill(std::string Name, FuncId Owner, MemType ValTy);

  Tag &tag(TagId Id) {
    assert(Id < Tags.size() && "invalid tag id");
    return Tags[Id];
  }
  const Tag &tag(TagId Id) const {
    assert(Id < Tags.size() && "invalid tag id");
    return Tags[Id];
  }

  size_t size() const { return Tags.size(); }

  std::vector<Tag>::const_iterator begin() const { return Tags.begin(); }
  std::vector<Tag>::const_iterator end() const { return Tags.end(); }

  /// Local/Spill tags owned by function \p F, in ascending tag-id order.
  /// Maintained as tags are created, so per-frame consumers (the
  /// interpreter's frame layouts, most prominently) never rescan the whole
  /// module table.
  const std::vector<TagId> &ownedBy(FuncId F) const {
    static const std::vector<TagId> Empty;
    return F < OwnerIndex.size() ? OwnerIndex[F] : Empty;
  }

private:
  TagId append(Tag T);
  std::vector<Tag> Tags;
  /// Per-function list of owned Local/Spill tag ids (see ownedBy).
  std::vector<std::vector<TagId>> OwnerIndex;
};

} // namespace rpcc

#endif // RPCC_IR_TAG_H
