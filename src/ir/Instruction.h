//===- ir/Instruction.h - IL instruction -----------------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single IL instruction. The representation is a tagged struct rather than
/// a class hierarchy: the pass suite is small and every pass switches over
/// opcodes anyway. Memory operations carry the tag information the paper's
/// analyses consume; calls carry MOD/REF summaries.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_IR_INSTRUCTION_H
#define RPCC_IR_INSTRUCTION_H

#include "ir/Opcode.h"
#include "ir/Tag.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace rpcc {

/// A virtual (or, after allocation, physical) register number.
using Reg = uint32_t;
inline constexpr Reg NoReg = ~Reg(0);

/// Index of a basic block within its function.
using BlockId = uint32_t;
inline constexpr BlockId NoBlock = ~BlockId(0);

/// Register value class.
enum class RegType : uint8_t { Int, Flt };

struct Instruction {
  Opcode Op;
  /// Defined register, or NoReg for instructions without a result.
  Reg Result = NoReg;
  /// Operand registers. For Store: [Addr, Value]. For ScalarStore: [Value].
  /// For Br: [Cond]. For Call: the arguments. For CallIndirect: [Callee,
  /// args...]. For Ret: [Value] if the function returns one.
  std::vector<Reg> Ops;
  /// Integer immediate (LoadI) or byte offset (LoadAddr).
  int64_t Imm = 0;
  /// Floating immediate (LoadF).
  double FImm = 0.0;
  /// Access width of memory operations.
  MemType MemTy = MemType::I64;
  /// The named location of ScalarLoad/ScalarStore/LoadAddr.
  TagId Tag = NoTag;
  /// May-reference tag set of pointer-based memory operations.
  TagSet Tags;
  /// Side-effect summaries of calls (the paper's "modified tags" and
  /// "referenced tags" lists).
  TagSet Mods, Refs;
  /// Callee of a direct call.
  FuncId Callee = NoFunc;
  /// Possible callees of an indirect call (refined by analysis; empty means
  /// "any addressed function").
  std::vector<FuncId> IndirectCallees;
  /// Branch targets: Br uses both (taken/fallthrough), Jmp uses Target0.
  BlockId Target0 = NoBlock;
  BlockId Target1 = NoBlock;
  /// Phi incoming values as (predecessor block, register) pairs.
  std::vector<std::pair<BlockId, Reg>> PhiIns;

  explicit Instruction(Opcode Op) : Op(Op) {}

  bool hasResult() const { return Result != NoReg; }

  /// Deep copy (tag sets and operand lists included).
  Instruction clone() const { return *this; }
};

} // namespace rpcc

#endif // RPCC_IR_INSTRUCTION_H
