//===- ir/BasicBlock.h - Basic block ----------------------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef RPCC_IR_BASICBLOCK_H
#define RPCC_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace rpcc {

/// A straight-line sequence of instructions terminated by a branch, jump, or
/// return. Predecessor/successor lists are derived state maintained by
/// Cfg::recompute(); passes that edit terminators must refresh them.
class BasicBlock {
public:
  BasicBlock(BlockId Id, std::string Name) : Id(Id), Name(std::move(Name)) {}

  BlockId id() const { return Id; }
  const std::string &name() const { return Name; }
  void setId(BlockId NewId) { Id = NewId; }
  void setName(std::string N) { Name = std::move(N); }

  std::vector<std::unique_ptr<Instruction>> &insts() { return Insts; }
  const std::vector<std::unique_ptr<Instruction>> &insts() const {
    return Insts;
  }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  /// Appends \p I and returns a pointer to the stored instruction.
  Instruction *append(Instruction I) {
    Insts.push_back(std::make_unique<Instruction>(std::move(I)));
    return Insts.back().get();
  }

  /// Inserts \p I before position \p Idx.
  Instruction *insertAt(size_t Idx, Instruction I) {
    auto It = Insts.begin() + static_cast<ptrdiff_t>(Idx);
    It = Insts.insert(It, std::make_unique<Instruction>(std::move(I)));
    return It->get();
  }

  void eraseAt(size_t Idx) {
    Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Idx));
  }

  /// The block terminator, or nullptr for a block still under construction.
  Instruction *terminator() {
    if (Insts.empty() || !isTerminator(Insts.back()->Op))
      return nullptr;
    return Insts.back().get();
  }
  const Instruction *terminator() const {
    return const_cast<BasicBlock *>(this)->terminator();
  }

  std::vector<BlockId> &preds() { return Preds; }
  std::vector<BlockId> &succs() { return Succs; }
  const std::vector<BlockId> &preds() const { return Preds; }
  const std::vector<BlockId> &succs() const { return Succs; }

  /// Deep copy: same id/name, every instruction copied by value (operand
  /// lists and tag sets included), predecessor/successor lists preserved.
  /// Shares no storage with this block.
  std::unique_ptr<BasicBlock> clone() const {
    auto B = std::make_unique<BasicBlock>(Id, Name);
    B->Insts.reserve(Insts.size());
    for (const auto &IP : Insts)
      B->Insts.push_back(std::make_unique<Instruction>(IP->clone()));
    B->Preds = Preds;
    B->Succs = Succs;
    return B;
  }

private:
  BlockId Id;
  std::string Name;
  std::vector<std::unique_ptr<Instruction>> Insts;
  std::vector<BlockId> Preds, Succs;
};

} // namespace rpcc

#endif // RPCC_IR_BASICBLOCK_H
