//===- ir/Module.cpp ------------------------------------------------------===//

#include "ir/Module.h"

using namespace rpcc;

std::unique_ptr<Module> Module::clone() const {
  auto M = std::make_unique<Module>();
  M->Funcs.reserve(Funcs.size());
  for (const auto &F : Funcs)
    M->Funcs.push_back(F->clone());
  M->FuncByName = FuncByName;
  M->Tags = Tags;
  M->Globals = Globals;
  return M;
}

Function *Module::addFunction(std::string Name) {
  assert(FuncByName.find(Name) == FuncByName.end() && "duplicate function");
  FuncId Id = static_cast<FuncId>(Funcs.size());
  Funcs.push_back(std::make_unique<Function>(Id, Name));
  FuncByName.emplace(std::move(Name), Id);
  return Funcs.back().get();
}

void Module::declareBuiltins() {
  struct Desc {
    const char *Name;
    BuiltinKind Kind;
    unsigned NumParams;
    bool FloatParams;
    bool HasRet;
    RegType RetTy;
  };
  static const Desc Table[] = {
      {"malloc", BuiltinKind::Malloc, 1, false, true, RegType::Int},
      {"free", BuiltinKind::Free, 1, false, false, RegType::Int},
      {"print_int", BuiltinKind::PrintInt, 1, false, false, RegType::Int},
      {"print_char", BuiltinKind::PrintChar, 1, false, false, RegType::Int},
      {"print_float", BuiltinKind::PrintFloat, 1, true, false, RegType::Int},
      {"print_str", BuiltinKind::PrintStr, 1, false, false, RegType::Int},
      {"sqrt", BuiltinKind::Sqrt, 1, true, true, RegType::Flt},
      {"sin", BuiltinKind::Sin, 1, true, true, RegType::Flt},
      {"cos", BuiltinKind::Cos, 1, true, true, RegType::Flt},
      {"pow", BuiltinKind::Pow, 2, true, true, RegType::Flt},
  };
  for (const Desc &D : Table) {
    if (lookup(D.Name) != NoFunc)
      continue;
    Function *F = addFunction(D.Name);
    F->setBuiltin(D.Kind);
    for (unsigned I = 0; I != D.NumParams; ++I)
      F->paramRegs().push_back(
          F->newReg(D.FloatParams ? RegType::Flt : RegType::Int));
    F->setReturn(D.HasRet, D.RetTy);
  }
}
