//===- ir/Function.cpp ----------------------------------------------------===//

#include "ir/Function.h"

#include <cassert>

using namespace rpcc;

std::unique_ptr<Function> Function::clone() const {
  auto F = std::make_unique<Function>(Id, Name);
  F->Builtin = Builtin;
  F->RegTypes = RegTypes;
  F->Params = Params;
  F->HasRet = HasRet;
  F->RetTy = RetTy;
  F->FnTag = FnTag;
  F->Blocks.reserve(Blocks.size());
  for (const auto &B : Blocks)
    F->Blocks.push_back(B->clone());
  return F;
}

void Function::removeBlocks(const std::vector<bool> &Dead) {
  assert(Dead.size() == Blocks.size() && "flag vector arity mismatch");
  assert((Blocks.empty() || !Dead[0]) && "cannot remove the entry block");

  std::vector<BlockId> Remap(Blocks.size(), NoBlock);
  std::vector<std::unique_ptr<BasicBlock>> Kept;
  Kept.reserve(Blocks.size());
  for (size_t I = 0; I != Blocks.size(); ++I) {
    if (Dead[I])
      continue;
    Remap[I] = static_cast<BlockId>(Kept.size());
    Blocks[I]->setId(static_cast<BlockId>(Kept.size()));
    Kept.push_back(std::move(Blocks[I]));
  }
  Blocks = std::move(Kept);

  for (auto &B : Blocks) {
    for (auto &IP : B->insts()) {
      Instruction &I = *IP;
      if (I.Target0 != NoBlock) {
        assert(Remap[I.Target0] != NoBlock && "branch into removed block");
        I.Target0 = Remap[I.Target0];
      }
      if (I.Target1 != NoBlock) {
        assert(Remap[I.Target1] != NoBlock && "branch into removed block");
        I.Target1 = Remap[I.Target1];
      }
      if (I.Op == Opcode::Phi) {
        // Drop incoming entries from removed predecessors.
        auto &Ins = I.PhiIns;
        size_t Out = 0;
        for (auto &P : Ins) {
          if (Remap[P.first] == NoBlock)
            continue;
          Ins[Out++] = {Remap[P.first], P.second};
        }
        Ins.resize(Out);
      }
    }
  }
}
