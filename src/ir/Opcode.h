//===- ir/Opcode.h - ILOC-style opcode set ---------------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the IL, including the paper's Table 1 hierarchy of
/// memory operations:
///
///   iLoad           -> LoadI / LoadF   (load a known constant value)
///   cLoad           -> ConstLoad       (load an invariant, unknown value)
///   sLoad / sStore  -> ScalarLoad / ScalarStore (value known to be scalar)
///   Load / Store    -> Load / Store    (general pointer-based form)
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_IR_OPCODE_H
#define RPCC_IR_OPCODE_H

#include <cstddef>
#include <cstdint>

namespace rpcc {

enum class Opcode : uint8_t {
  // Integer arithmetic, register-to-register.
  Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
  // Integer comparisons producing 0/1.
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  // Floating-point arithmetic and comparisons.
  FAdd, FSub, FMul, FDiv,
  FCmpEq, FCmpNe, FCmpLt, FCmpLe, FCmpGt, FCmpGe,
  // Unary.
  Neg, Not, FNeg, IntToFp, FpToInt,
  // Immediates and copies.
  LoadI,  ///< iLoad: integer immediate
  LoadF,  ///< iLoad: floating immediate
  Copy,   ///< CP: register copy (coalescable)
  // Address formation.
  LoadAddr, ///< LDA: address of a tag plus a constant byte offset
  // Memory hierarchy (Table 1).
  ConstLoad,   ///< cLoad: pointer-based load from read-only storage
  ScalarLoad,  ///< sLoad: direct load of a named scalar
  ScalarStore, ///< sStore: direct store of a named scalar
  Load,        ///< general pointer-based load; carries a tag set
  Store,       ///< general pointer-based store; carries a tag set
  // Control.
  Call,         ///< JSR: direct call; carries MOD/REF tag sets
  CallIndirect, ///< IJSR: call through a register
  Br,           ///< conditional branch on a register
  Jmp,          ///< unconditional branch
  Ret,          ///< return, with optional value
  Phi,          ///< SSA phi (only present while a function is in SSA form)
  // Sentinel: number of real opcodes. Must stay last; per-opcode counter
  // arrays are sized by it so adding an opcode can never index out of
  // bounds.
  kNumOpcodes
};

/// Number of real opcodes, for sizing per-opcode tables.
inline constexpr size_t NumOpcodes = static_cast<size_t>(Opcode::kNumOpcodes);

static_assert(static_cast<size_t>(Opcode::Phi) + 1 == NumOpcodes,
              "kNumOpcodes must remain the last enumerator");

/// Printable mnemonic for \p Op (ILOC-flavored).
const char *opcodeName(Opcode Op);

inline bool isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::Jmp || Op == Opcode::Ret;
}

inline bool isCallOp(Opcode Op) {
  return Op == Opcode::Call || Op == Opcode::CallIndirect;
}

/// Dynamic "load executed" per the paper's Figure 7 metric.
inline bool isLoadOp(Opcode Op) {
  return Op == Opcode::ScalarLoad || Op == Opcode::Load ||
         Op == Opcode::ConstLoad;
}

/// Dynamic "store executed" per the paper's Figure 6 metric.
inline bool isStoreOp(Opcode Op) {
  return Op == Opcode::ScalarStore || Op == Opcode::Store;
}

inline bool isMemOp(Opcode Op) { return isLoadOp(Op) || isStoreOp(Op); }

/// Pointer-based memory operations: the ones that carry tag sets.
inline bool isPointerMemOp(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store || Op == Opcode::ConstLoad;
}

/// True for operations whose result is a pure function of their operands and
/// that touch no memory; these are candidates for value numbering, PRE, LICM
/// and dead-code elimination.
inline bool isPureOp(Opcode Op) {
  switch (Op) {
  case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
  case Opcode::Rem: case Opcode::And: case Opcode::Or: case Opcode::Xor:
  case Opcode::Shl: case Opcode::Shr:
  case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
  case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
  case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv:
  case Opcode::FCmpEq: case Opcode::FCmpNe: case Opcode::FCmpLt:
  case Opcode::FCmpLe: case Opcode::FCmpGt: case Opcode::FCmpGe:
  case Opcode::Neg: case Opcode::Not: case Opcode::FNeg:
  case Opcode::IntToFp: case Opcode::FpToInt:
  case Opcode::LoadI: case Opcode::LoadF: case Opcode::Copy:
  case Opcode::LoadAddr:
    return true;
  default:
    return false;
  }
}

/// True for commutative binary operators (used by value numbering).
inline bool isCommutative(Opcode Op) {
  switch (Op) {
  case Opcode::Add: case Opcode::Mul: case Opcode::And: case Opcode::Or:
  case Opcode::Xor: case Opcode::CmpEq: case Opcode::CmpNe:
  case Opcode::FAdd: case Opcode::FMul:
  case Opcode::FCmpEq: case Opcode::FCmpNe:
    return true;
  default:
    return false;
  }
}

} // namespace rpcc

#endif // RPCC_IR_OPCODE_H
