//===- ir/Instruction.cpp -------------------------------------------------===//

#include "ir/Instruction.h"

using namespace rpcc;

const char *rpcc::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add: return "ADD";
  case Opcode::Sub: return "SUB";
  case Opcode::Mul: return "MUL";
  case Opcode::Div: return "DIV";
  case Opcode::Rem: return "REM";
  case Opcode::And: return "AND";
  case Opcode::Or: return "OR";
  case Opcode::Xor: return "XOR";
  case Opcode::Shl: return "SHL";
  case Opcode::Shr: return "SHR";
  case Opcode::CmpEq: return "CMPEQ";
  case Opcode::CmpNe: return "CMPNE";
  case Opcode::CmpLt: return "CMPLT";
  case Opcode::CmpLe: return "CMPLE";
  case Opcode::CmpGt: return "CMPGT";
  case Opcode::CmpGe: return "CMPGE";
  case Opcode::FAdd: return "FADD";
  case Opcode::FSub: return "FSUB";
  case Opcode::FMul: return "FMUL";
  case Opcode::FDiv: return "FDIV";
  case Opcode::FCmpEq: return "FCMPEQ";
  case Opcode::FCmpNe: return "FCMPNE";
  case Opcode::FCmpLt: return "FCMPLT";
  case Opcode::FCmpLe: return "FCMPLE";
  case Opcode::FCmpGt: return "FCMPGT";
  case Opcode::FCmpGe: return "FCMPGE";
  case Opcode::Neg: return "NEG";
  case Opcode::Not: return "NOT";
  case Opcode::FNeg: return "FNEG";
  case Opcode::IntToFp: return "I2D";
  case Opcode::FpToInt: return "D2I";
  case Opcode::LoadI: return "LOADI";
  case Opcode::LoadF: return "LOADF";
  case Opcode::Copy: return "CP";
  case Opcode::LoadAddr: return "LDA";
  case Opcode::ConstLoad: return "CLD";
  case Opcode::ScalarLoad: return "SLD";
  case Opcode::ScalarStore: return "SST";
  case Opcode::Load: return "PLD";
  case Opcode::Store: return "PST";
  case Opcode::Call: return "JSR";
  case Opcode::CallIndirect: return "IJSR";
  case Opcode::Br: return "BR";
  case Opcode::Jmp: return "JMP";
  case Opcode::Ret: return "RET";
  case Opcode::Phi: return "PHI";
  case Opcode::kNumOpcodes: break; // sentinel, never an instruction
  }
  return "?";
}
