//===- ir/IRBuilder.cpp ---------------------------------------------------===//

#include "ir/IRBuilder.h"

#include <cassert>

using namespace rpcc;

Instruction *IRBuilder::append(Instruction I) {
  assert(BB && "no insertion block set");
  assert(!BB->terminator() && "appending past a terminator");
  return BB->append(std::move(I));
}

Reg IRBuilder::emitBin(Opcode Op, Reg A, Reg B, RegType Ty) {
  Instruction I(Op);
  I.Ops = {A, B};
  I.Result = F->newReg(Ty);
  return append(std::move(I))->Result;
}

Reg IRBuilder::emitUn(Opcode Op, Reg A, RegType Ty) {
  Instruction I(Op);
  I.Ops = {A};
  I.Result = F->newReg(Ty);
  return append(std::move(I))->Result;
}

Reg IRBuilder::emitLoadI(int64_t V) {
  Instruction I(Opcode::LoadI);
  I.Imm = V;
  I.Result = F->newReg(RegType::Int);
  return append(std::move(I))->Result;
}

Reg IRBuilder::emitLoadF(double V) {
  Instruction I(Opcode::LoadF);
  I.FImm = V;
  I.Result = F->newReg(RegType::Flt);
  return append(std::move(I))->Result;
}

Reg IRBuilder::emitCopy(Reg Src) {
  Instruction I(Opcode::Copy);
  I.Ops = {Src};
  I.Result = F->newReg(F->regType(Src));
  return append(std::move(I))->Result;
}

void IRBuilder::emitCopyTo(Reg Dst, Reg Src) {
  Instruction I(Opcode::Copy);
  I.Ops = {Src};
  I.Result = Dst;
  append(std::move(I));
}

Reg IRBuilder::emitLoadAddr(TagId T, int64_t Offset) {
  Instruction I(Opcode::LoadAddr);
  I.Tag = T;
  I.Imm = Offset;
  I.Result = F->newReg(RegType::Int);
  return append(std::move(I))->Result;
}

Reg IRBuilder::emitScalarLoad(TagId T) {
  const Tag &Tg = M.tags().tag(T);
  assert(Tg.IsScalar && "scalar load of a non-scalar tag");
  Instruction I(Opcode::ScalarLoad);
  I.Tag = T;
  I.MemTy = Tg.ValTy;
  I.Result =
      F->newReg(Tg.ValTy == MemType::F64 ? RegType::Flt : RegType::Int);
  return append(std::move(I))->Result;
}

void IRBuilder::emitScalarStore(TagId T, Reg V) {
  const Tag &Tg = M.tags().tag(T);
  assert(Tg.IsScalar && "scalar store to a non-scalar tag");
  Instruction I(Opcode::ScalarStore);
  I.Tag = T;
  I.MemTy = Tg.ValTy;
  I.Ops = {V};
  append(std::move(I));
}

Reg IRBuilder::emitLoad(Reg Addr, MemType Ty, TagSet Tags) {
  Instruction I(Opcode::Load);
  I.Ops = {Addr};
  I.MemTy = Ty;
  I.Tags = std::move(Tags);
  I.Result = F->newReg(Ty == MemType::F64 ? RegType::Flt : RegType::Int);
  return append(std::move(I))->Result;
}

Reg IRBuilder::emitConstLoad(Reg Addr, MemType Ty, TagSet Tags) {
  Instruction I(Opcode::ConstLoad);
  I.Ops = {Addr};
  I.MemTy = Ty;
  I.Tags = std::move(Tags);
  I.Result = F->newReg(Ty == MemType::F64 ? RegType::Flt : RegType::Int);
  return append(std::move(I))->Result;
}

void IRBuilder::emitStore(Reg Addr, Reg V, MemType Ty, TagSet Tags) {
  Instruction I(Opcode::Store);
  I.Ops = {Addr, V};
  I.MemTy = Ty;
  I.Tags = std::move(Tags);
  append(std::move(I));
}

Reg IRBuilder::emitCall(Function *Callee, const std::vector<Reg> &Args) {
  Instruction I(Opcode::Call);
  I.Callee = Callee->id();
  I.Ops = Args;
  if (Callee->returnsValue())
    I.Result = F->newReg(Callee->returnType());
  return append(std::move(I))->Result;
}

Reg IRBuilder::emitCallIndirect(Reg Callee, const std::vector<Reg> &Args,
                                bool HasRet, RegType RetTy) {
  Instruction I(Opcode::CallIndirect);
  I.Ops.push_back(Callee);
  for (Reg A : Args)
    I.Ops.push_back(A);
  if (HasRet)
    I.Result = F->newReg(RetTy);
  return append(std::move(I))->Result;
}

void IRBuilder::emitBr(Reg Cond, BlockId IfTrue, BlockId IfFalse) {
  Instruction I(Opcode::Br);
  I.Ops = {Cond};
  I.Target0 = IfTrue;
  I.Target1 = IfFalse;
  append(std::move(I));
}

void IRBuilder::emitJmp(BlockId Target) {
  Instruction I(Opcode::Jmp);
  I.Target0 = Target;
  append(std::move(I));
}

void IRBuilder::emitRet() { append(Instruction(Opcode::Ret)); }

void IRBuilder::emitRet(Reg V) {
  Instruction I(Opcode::Ret);
  I.Ops = {V};
  append(std::move(I));
}

Reg IRBuilder::emitPhi(RegType Ty, std::vector<std::pair<BlockId, Reg>> Ins) {
  Instruction I(Opcode::Phi);
  I.PhiIns = std::move(Ins);
  I.Result = F->newReg(Ty);
  // Phis go at the head of the block, before any already-appended code.
  assert(BB && "no insertion block set");
  size_t Idx = 0;
  while (Idx < BB->size() && BB->insts()[Idx]->Op == Opcode::Phi)
    ++Idx;
  return BB->insertAt(Idx, std::move(I))->Result;
}
