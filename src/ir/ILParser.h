//===- ir/ILParser.h - Textual IL parser -------------------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IL emitted by printModule() back into a Module, so
/// that IL-level test fixtures can be written as text and modules round-trip
/// through files. Register types are inferred from definitions (LOADF,
/// floating arithmetic, f64 memory accesses, copy/phi propagation);
/// parameter types come from the `rN:f64` annotations in function headers.
///
/// Not preserved across a round-trip: resolved indirect-callee lists
/// (rerun the alias analyses to recover them).
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_IR_ILPARSER_H
#define RPCC_IR_ILPARSER_H

#include "ir/Module.h"

#include <string>

namespace rpcc {

/// Parses \p Text into \p M (which must be freshly constructed; builtins
/// are declared automatically). On failure returns false and describes the
/// first error, with its line number, in \p Err.
bool parseModule(const std::string &Text, Module &M, std::string &Err);

} // namespace rpcc

#endif // RPCC_IR_ILPARSER_H
