//===- ir/Tag.cpp ---------------------------------------------------------===//

#include "ir/Tag.h"

using namespace rpcc;

TagId TagTable::append(Tag T) {
  T.Id = static_cast<TagId>(Tags.size());
  if ((T.Kind == TagKind::Local || T.Kind == TagKind::Spill) &&
      T.Owner != NoFunc) {
    if (OwnerIndex.size() <= T.Owner)
      OwnerIndex.resize(T.Owner + 1);
    OwnerIndex[T.Owner].push_back(T.Id);
  }
  Tags.push_back(std::move(T));
  return Tags.back().Id;
}

TagId TagTable::createGlobal(std::string Name, uint32_t Size, bool Scalar,
                             MemType ValTy, bool ReadOnly) {
  Tag T;
  T.Name = std::move(Name);
  T.Kind = TagKind::Global;
  T.SizeBytes = Size;
  T.IsScalar = Scalar;
  T.ValTy = ValTy;
  T.ReadOnly = ReadOnly;
  return append(std::move(T));
}

TagId TagTable::createLocal(std::string Name, FuncId Owner, uint32_t Size,
                            bool Scalar, MemType ValTy) {
  Tag T;
  T.Name = std::move(Name);
  T.Kind = TagKind::Local;
  T.Owner = Owner;
  T.SizeBytes = Size;
  T.IsScalar = Scalar;
  T.ValTy = ValTy;
  return append(std::move(T));
}

TagId TagTable::createHeap(std::string Name) {
  Tag T;
  T.Name = std::move(Name);
  T.Kind = TagKind::Heap;
  T.SizeBytes = 0; // size is dynamic; the interpreter tracks real extents
  T.IsScalar = false;
  // A heap tag summarizes every object made at one call site, so its address
  // is considered exposed from birth.
  T.AddressTaken = true;
  return append(std::move(T));
}

TagId TagTable::createFunc(std::string Name, FuncId Fn) {
  Tag T;
  T.Name = std::move(Name);
  T.Kind = TagKind::Func;
  T.Fn = Fn;
  T.SizeBytes = 0;
  T.ReadOnly = true;
  return append(std::move(T));
}

TagId TagTable::createSpill(std::string Name, FuncId Owner, MemType ValTy) {
  Tag T;
  T.Name = std::move(Name);
  T.Kind = TagKind::Spill;
  T.Owner = Owner;
  T.IsScalar = true;
  T.ValTy = ValTy;
  T.SizeBytes = memTypeSize(ValTy);
  return append(std::move(T));
}
