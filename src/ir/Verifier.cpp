//===- ir/Verifier.cpp ----------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"

#include <sstream>

using namespace rpcc;

namespace {

/// Operand/result shape of an opcode: how many operand registers it takes
/// (-1 = variable) and whether it defines a result. The interpreter indexes
/// Ops[] blindly, so the verifier is the only thing standing between a
/// malformed instruction and out-of-bounds reads.
struct OpShape {
  int NumOps;     ///< exact operand count, or -1 for variable
  bool HasResult; ///< must define a register
  bool NoResult;  ///< must NOT define a register
};

OpShape shapeOf(Opcode Op) {
  switch (Op) {
  case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
  case Opcode::Rem: case Opcode::And: case Opcode::Or: case Opcode::Xor:
  case Opcode::Shl: case Opcode::Shr:
  case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
  case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
  case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv:
  case Opcode::FCmpEq: case Opcode::FCmpNe: case Opcode::FCmpLt:
  case Opcode::FCmpLe: case Opcode::FCmpGt: case Opcode::FCmpGe:
    return {2, true, false};
  case Opcode::Neg: case Opcode::Not: case Opcode::FNeg:
  case Opcode::IntToFp: case Opcode::FpToInt: case Opcode::Copy:
    return {1, true, false};
  case Opcode::LoadI: case Opcode::LoadF: case Opcode::LoadAddr:
  case Opcode::ScalarLoad:
    return {0, true, false};
  case Opcode::ConstLoad: case Opcode::Load:
    return {1, true, false};
  case Opcode::ScalarStore:
    return {1, false, true};
  case Opcode::Store:
    return {2, false, true};
  case Opcode::Br:
    return {1, false, true};
  case Opcode::Jmp:
    return {0, false, true};
  case Opcode::Phi:
    return {0, true, false};
  case Opcode::Call: case Opcode::CallIndirect: case Opcode::Ret:
    return {-1, false, false}; // checked specially
  case Opcode::kNumOpcodes:
    break; // sentinel, never an instruction
  }
  return {-1, false, false};
}

class FunctionVerifier {
public:
  FunctionVerifier(const Module &M, const Function &F, std::string &Err,
                   const VerifyOptions &Opts)
      : M(M), F(F), Err(Err), Opts(Opts) {}

  bool run() {
    if (F.numBlocks() == 0) {
      fail("function has no blocks");
      return Ok;
    }
    for (const auto &B : F.blocks())
      checkBlock(*B);
    if (Ok && Opts.CheckDefBeforeUse)
      checkDefBeforeUse();
    return Ok;
  }

private:
  void fail(const std::string &Msg) {
    std::ostringstream OS;
    OS << "verify: " << F.name() << ": " << Msg << "\n";
    Err += OS.str();
    Ok = false;
  }

  void failInst(const BasicBlock &B, const Instruction &I,
                const std::string &Msg) {
    std::ostringstream OS;
    OS << "B" << B.id() << ": '" << printInst(M, F, I) << "': " << Msg;
    fail(OS.str());
  }

  void checkReg(const BasicBlock &B, const Instruction &I, Reg R) {
    if (R == NoReg || R >= F.numRegs())
      failInst(B, I, "register out of range");
  }

  void checkTarget(const BasicBlock &B, const Instruction &I, BlockId T) {
    if (T == NoBlock || T >= F.numBlocks())
      failInst(B, I, "branch target out of range");
  }

  void checkTagId(const BasicBlock &B, const Instruction &I, TagId T,
                  const char *What) {
    if (T == NoTag || T >= M.tags().size())
      failInst(B, I, std::string(What) + " names a nonexistent tag");
  }

  void checkTagSet(const BasicBlock &B, const Instruction &I, const TagSet &S,
                   const char *What) {
    for (TagId T : S)
      checkTagId(B, I, T, What);
  }

  void checkBlock(const BasicBlock &B) {
    if (B.empty()) {
      fail("block B" + std::to_string(B.id()) + " is empty");
      return;
    }
    bool SeenNonPhi = false;
    for (size_t Idx = 0; Idx != B.size(); ++Idx) {
      const Instruction &I = *B.insts()[Idx];
      bool Last = Idx + 1 == B.size();
      if (isTerminator(I.Op) && !Last)
        failInst(B, I, "terminator in the middle of a block");
      if (Last && !isTerminator(I.Op))
        failInst(B, I, "block does not end in a terminator");
      if (I.Op == Opcode::Phi) {
        if (SeenNonPhi)
          failInst(B, I, "phi after non-phi instruction");
      } else {
        SeenNonPhi = true;
      }
      checkInst(B, I);
    }
  }

  void checkInst(const BasicBlock &B, const Instruction &I) {
    OpShape S = shapeOf(I.Op);
    if (S.NumOps >= 0 && I.Ops.size() != static_cast<size_t>(S.NumOps))
      failInst(B, I, "expected " + std::to_string(S.NumOps) +
                         " operand(s), found " + std::to_string(I.Ops.size()));
    if (S.HasResult && !I.hasResult())
      failInst(B, I, "instruction must define a result register");
    if (S.NoResult && I.hasResult())
      failInst(B, I, "instruction must not define a result register");

    if (I.hasResult())
      checkReg(B, I, I.Result);
    for (Reg R : I.Ops)
      checkReg(B, I, R);

    switch (I.Op) {
    case Opcode::ScalarLoad:
    case Opcode::ScalarStore: {
      if (I.Tag == NoTag || I.Tag >= M.tags().size()) {
        failInst(B, I, "invalid tag");
        break;
      }
      if (!M.tags().tag(I.Tag).IsScalar)
        failInst(B, I, "scalar memory op on non-scalar tag");
      break;
    }
    case Opcode::LoadAddr:
      if (I.Tag == NoTag || I.Tag >= M.tags().size())
        failInst(B, I, "invalid tag");
      break;
    case Opcode::Load:
    case Opcode::ConstLoad:
    case Opcode::Store:
      checkTagSet(B, I, I.Tags, "tag list");
      break;
    case Opcode::Call: {
      if (I.Callee == NoFunc || I.Callee >= M.numFunctions()) {
        failInst(B, I, "invalid callee");
        break;
      }
      const Function *Callee = M.function(I.Callee);
      if (I.Ops.size() != Callee->paramRegs().size())
        failInst(B, I, "call arity mismatch");
      if (Callee->returnsValue() != I.hasResult())
        failInst(B, I, "call result mismatch with callee return type");
      checkTagSet(B, I, I.Mods, "call MOD list");
      checkTagSet(B, I, I.Refs, "call REF list");
      if (I.Tag != NoTag)
        checkTagId(B, I, I.Tag, "allocation site");
      break;
    }
    case Opcode::CallIndirect:
      if (I.Ops.empty())
        failInst(B, I, "indirect call needs a callee operand");
      checkTagSet(B, I, I.Mods, "call MOD list");
      checkTagSet(B, I, I.Refs, "call REF list");
      for (FuncId Target : I.IndirectCallees)
        if (Target == NoFunc || Target >= M.numFunctions())
          failInst(B, I, "resolved callee list names a nonexistent function");
      break;
    case Opcode::Br:
      checkTarget(B, I, I.Target0);
      checkTarget(B, I, I.Target1);
      break;
    case Opcode::Jmp:
      checkTarget(B, I, I.Target0);
      break;
    case Opcode::Ret:
      if (F.returnsValue() && I.Ops.size() != 1)
        failInst(B, I, "missing return value");
      if (!F.returnsValue() && !I.Ops.empty())
        failInst(B, I, "unexpected return value");
      break;
    case Opcode::Phi:
      for (const auto &[Pred, R] : I.PhiIns) {
        checkTarget(B, I, Pred);
        checkReg(B, I, R);
      }
      break;
    default:
      break;
    }
  }

  /// Forward must-define dataflow: a register may only be read if every path
  /// from entry assigns it first. Runs only once the structural checks pass,
  /// so every register index is known to be in range.
  void checkDefBeforeUse() {
    size_t NR = F.numRegs(), NB = F.numBlocks();
    // Out[b] starts at "all defined" (top) and shrinks to a fixpoint.
    std::vector<std::vector<bool>> Out(NB, std::vector<bool>(NR, true));
    std::vector<bool> EntryIn(NR, false);
    for (Reg P : F.paramRegs())
      EntryIn[P] = true;

    // Predecessor lists straight from the terminators (the analysis-layer
    // CFG may be stale while verifying).
    std::vector<std::vector<BlockId>> Preds(NB);
    for (const auto &B : F.blocks()) {
      const Instruction *T = B->terminator();
      if (!T)
        continue;
      if (T->Op == Opcode::Br) {
        Preds[T->Target0].push_back(B->id());
        Preds[T->Target1].push_back(B->id());
      } else if (T->Op == Opcode::Jmp) {
        Preds[T->Target0].push_back(B->id());
      }
    }

    auto blockIn = [&](BlockId Id) {
      // The entry block executes first no matter what edges loop back into
      // it, so only parameters are definitely assigned there. Unreachable
      // blocks get the same weakest assumption rather than vacuous truth.
      if (Id == 0 || Preds[Id].empty())
        return EntryIn;
      std::vector<bool> In(NR, true);
      for (BlockId P : Preds[Id])
        for (size_t R = 0; R != NR; ++R)
          In[R] = In[R] && Out[P][R];
      return In;
    };

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockId Id = 0; Id != NB; ++Id) {
        std::vector<bool> Cur = blockIn(Id);
        for (const auto &I : F.block(Id)->insts())
          if (I->hasResult())
            Cur[I->Result] = true;
        if (Cur != Out[Id]) {
          Out[Id] = std::move(Cur);
          Changed = true;
        }
      }
    }

    for (BlockId Id = 0; Id != NB; ++Id) {
      const BasicBlock &B = *F.block(Id);
      std::vector<bool> Defined = blockIn(Id);
      // Phi results materialize at block entry, before any non-phi reads.
      for (const auto &I : B.insts()) {
        if (I->Op != Opcode::Phi)
          break;
        Defined[I->Result] = true;
      }
      for (const auto &IP : B.insts()) {
        const Instruction &I = *IP;
        if (I.Op == Opcode::Phi) {
          // A phi reads its incoming register at the end of the predecessor.
          for (const auto &[Pred, R] : I.PhiIns)
            if (!Out[Pred][R])
              failInst(B, I, "phi operand r" + std::to_string(R) +
                                 " not defined on the edge from B" +
                                 std::to_string(Pred));
          continue;
        }
        for (Reg R : I.Ops)
          if (!Defined[R])
            failInst(B, I,
                     "operand r" + std::to_string(R) + " used before def");
        if (I.hasResult())
          Defined[I.Result] = true;
      }
    }
  }

  const Module &M;
  const Function &F;
  std::string &Err;
  const VerifyOptions &Opts;
  bool Ok = true;
};

} // namespace

bool rpcc::verifyFunction(const Module &M, const Function &F, std::string &Err,
                          const VerifyOptions &Opts) {
  return FunctionVerifier(M, F, Err, Opts).run();
}

namespace {

/// Module-level structure: the tag table and the globals list. Every
/// cross-reference they hold (owner function, named function, initialized
/// tag) must be in range *before* anything dereferences it — Module's
/// accessors assert on bad ids, so a dangling reference that slipped past
/// here would be process death, not a diagnostic.
bool verifyModuleTables(const Module &M, std::string &Err) {
  bool Ok = true;
  auto Fail = [&](const std::string &Msg) {
    Ok = false;
    Err += "module: " + Msg + "\n";
  };
  const size_t NFuncs = M.numFunctions();
  for (const Tag &T : M.tags()) {
    if ((T.Kind == TagKind::Local || T.Kind == TagKind::Spill) &&
        T.Owner >= NFuncs)
      Fail("tag '" + T.Name + "' has a dangling owner func#" +
           std::to_string(T.Owner));
    if (T.Kind == TagKind::Func && T.Fn >= NFuncs)
      Fail("func tag '" + T.Name + "' names a dangling func#" +
           std::to_string(T.Fn));
  }
  const size_t NTags = M.tags().size();
  for (size_t I = 0; I != M.globals().size(); ++I)
    if (M.globals()[I].Tag >= NTags)
      Fail("global initializer #" + std::to_string(I) +
           " names a dangling tag#" + std::to_string(M.globals()[I].Tag));
  return Ok;
}

} // namespace

bool rpcc::verifyModule(const Module &M, std::string &Err,
                        const VerifyOptions &Opts) {
  bool Ok = verifyModuleTables(M, Err);
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    const Function *F = M.function(static_cast<FuncId>(I));
    if (F->isBuiltin())
      continue;
    Ok &= verifyFunction(M, *F, Err, Opts);
  }
  return Ok;
}
