//===- ir/Verifier.cpp ----------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"

#include <sstream>

using namespace rpcc;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Module &M, const Function &F, std::string &Err)
      : M(M), F(F), Err(Err) {}

  bool run() {
    if (F.numBlocks() == 0) {
      fail("function has no blocks");
      return Ok;
    }
    for (const auto &B : F.blocks())
      checkBlock(*B);
    return Ok;
  }

private:
  void fail(const std::string &Msg) {
    std::ostringstream OS;
    OS << "verify: " << F.name() << ": " << Msg << "\n";
    Err += OS.str();
    Ok = false;
  }

  void failInst(const BasicBlock &B, const Instruction &I,
                const std::string &Msg) {
    std::ostringstream OS;
    OS << "B" << B.id() << ": '" << printInst(M, F, I) << "': " << Msg;
    fail(OS.str());
  }

  void checkReg(const BasicBlock &B, const Instruction &I, Reg R) {
    if (R == NoReg || R >= F.numRegs())
      failInst(B, I, "register out of range");
  }

  void checkTarget(const BasicBlock &B, const Instruction &I, BlockId T) {
    if (T == NoBlock || T >= F.numBlocks())
      failInst(B, I, "branch target out of range");
  }

  void checkBlock(const BasicBlock &B) {
    if (B.empty()) {
      fail("block B" + std::to_string(B.id()) + " is empty");
      return;
    }
    bool SeenNonPhi = false;
    for (size_t Idx = 0; Idx != B.size(); ++Idx) {
      const Instruction &I = *B.insts()[Idx];
      bool Last = Idx + 1 == B.size();
      if (isTerminator(I.Op) && !Last)
        failInst(B, I, "terminator in the middle of a block");
      if (Last && !isTerminator(I.Op))
        failInst(B, I, "block does not end in a terminator");
      if (I.Op == Opcode::Phi) {
        if (SeenNonPhi)
          failInst(B, I, "phi after non-phi instruction");
      } else {
        SeenNonPhi = true;
      }
      checkInst(B, I);
    }
  }

  void checkInst(const BasicBlock &B, const Instruction &I) {
    if (I.hasResult())
      checkReg(B, I, I.Result);
    for (Reg R : I.Ops)
      checkReg(B, I, R);

    switch (I.Op) {
    case Opcode::ScalarLoad:
    case Opcode::ScalarStore: {
      if (I.Tag == NoTag || I.Tag >= M.tags().size()) {
        failInst(B, I, "invalid tag");
        break;
      }
      if (!M.tags().tag(I.Tag).IsScalar)
        failInst(B, I, "scalar memory op on non-scalar tag");
      if (I.Op == Opcode::ScalarStore && I.Ops.size() != 1)
        failInst(B, I, "scalar store takes exactly one operand");
      break;
    }
    case Opcode::LoadAddr:
      if (I.Tag == NoTag || I.Tag >= M.tags().size())
        failInst(B, I, "invalid tag");
      break;
    case Opcode::Load:
    case Opcode::ConstLoad:
      if (I.Ops.size() != 1)
        failInst(B, I, "load takes exactly one address operand");
      break;
    case Opcode::Store:
      if (I.Ops.size() != 2)
        failInst(B, I, "store takes address and value operands");
      break;
    case Opcode::Call: {
      if (I.Callee == NoFunc || I.Callee >= M.numFunctions()) {
        failInst(B, I, "invalid callee");
        break;
      }
      const Function *Callee = M.function(I.Callee);
      if (I.Ops.size() != Callee->paramRegs().size())
        failInst(B, I, "call arity mismatch");
      if (Callee->returnsValue() != I.hasResult())
        failInst(B, I, "call result mismatch with callee return type");
      break;
    }
    case Opcode::CallIndirect:
      if (I.Ops.empty())
        failInst(B, I, "indirect call needs a callee operand");
      break;
    case Opcode::Br:
      if (I.Ops.size() != 1)
        failInst(B, I, "branch takes one condition operand");
      checkTarget(B, I, I.Target0);
      checkTarget(B, I, I.Target1);
      break;
    case Opcode::Jmp:
      checkTarget(B, I, I.Target0);
      break;
    case Opcode::Ret:
      if (F.returnsValue() && I.Ops.size() != 1)
        failInst(B, I, "missing return value");
      if (!F.returnsValue() && !I.Ops.empty())
        failInst(B, I, "unexpected return value");
      break;
    case Opcode::Phi:
      for (const auto &[Pred, R] : I.PhiIns) {
        checkTarget(B, I, Pred);
        checkReg(B, I, R);
      }
      break;
    default:
      break;
    }
  }

  const Module &M;
  const Function &F;
  std::string &Err;
  bool Ok = true;
};

} // namespace

bool rpcc::verifyFunction(const Module &M, const Function &F,
                          std::string &Err) {
  return FunctionVerifier(M, F, Err).run();
}

bool rpcc::verifyModule(const Module &M, std::string &Err) {
  bool Ok = true;
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    const Function *F = M.function(static_cast<FuncId>(I));
    if (F->isBuiltin())
      continue;
    Ok &= verifyFunction(M, *F, Err);
  }
  return Ok;
}
