//===- ir/ILParser.cpp ----------------------------------------------------===//

#include "ir/ILParser.h"

#include <cassert>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

using namespace rpcc;

namespace {

/// Opcode mnemonics for the generic register-to-register forms (memory,
/// call, and control forms have dedicated syntax).
const std::map<std::string, Opcode> &mnemonics() {
  static const std::map<std::string, Opcode> Map = [] {
    std::map<std::string, Opcode> Out;
    for (int OpI = 0; OpI <= static_cast<int>(Opcode::Phi); ++OpI) {
      Opcode Op = static_cast<Opcode>(OpI);
      Out.emplace(opcodeName(Op), Op);
    }
    return Out;
  }();
  return Map;
}

class Parser {
public:
  Parser(const std::string &Text, Module &M, std::string &Err)
      : M(M), Err(Err) {
    std::istringstream SS(Text);
    std::string Line;
    while (std::getline(SS, Line))
      Lines.push_back(Line);
  }

  bool run() {
    M.declareBuiltins();

    // Pass 1: function names (tags may reference functions defined later).
    for (const std::string &L : Lines) {
      std::string_view V = trimmed(L);
      if (V.rfind("func ", 0) != 0)
        continue;
      size_t Paren = V.find('(');
      if (Paren == std::string_view::npos)
        continue;
      std::string Name(V.substr(5, Paren - 5));
      if (M.lookup(Name) == NoFunc)
        M.addFunction(Name);
    }

    // Pass 2: directives and bodies.
    while (LineNo < Lines.size()) {
      std::string_view V = trimmed(Lines[LineNo]);
      if (V.empty() || V[0] == ';') {
        ++LineNo;
        continue;
      }
      if (V.rfind("tag ", 0) == 0) {
        if (!parseTag(V))
          return false;
        ++LineNo;
      } else if (V.rfind("global ", 0) == 0) {
        if (!parseGlobal(V))
          return false;
        ++LineNo;
      } else if (V.rfind("func ", 0) == 0) {
        if (!parseFunction(V))
          return false;
      } else {
        return fail("unexpected line");
      }
    }
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Err = "IL parse error, line " + std::to_string(LineNo + 1) + ": " + Msg;
    return false;
  }

  static std::string_view trimmed(std::string_view S) {
    while (!S.empty() && (S.front() == ' ' || S.front() == '\t'))
      S.remove_prefix(1);
    while (!S.empty() &&
           (S.back() == ' ' || S.back() == '\t' || S.back() == '\r'))
      S.remove_suffix(1);
    return S;
  }

  /// Splits on single spaces, keeping bracketed/braced chunks whole enough
  /// for the per-form parsers below.
  static std::vector<std::string> words(std::string_view S) {
    std::vector<std::string> Out;
    std::string Cur;
    for (char C : S) {
      if (C == ' ') {
        if (!Cur.empty())
          Out.push_back(std::move(Cur));
        Cur.clear();
      } else {
        Cur.push_back(C);
      }
    }
    if (!Cur.empty())
      Out.push_back(std::move(Cur));
    return Out;
  }

  // -- Names and small pieces ----------------------------------------------
  bool parseReg(std::string_view S, Reg &Out) {
    // Strip trailing separators the printer attaches.
    while (!S.empty() && (S.back() == ',' || S.back() == ')'))
      S.remove_suffix(1);
    if (S.size() < 2 || S[0] != 'r')
      return false;
    Out = static_cast<Reg>(std::strtoul(std::string(S.substr(1)).c_str(),
                                        nullptr, 10));
    return true;
  }

  bool tagByName(std::string_view Name, TagId &Out) {
    auto It = TagsByName.find(std::string(Name));
    if (It == TagsByName.end())
      return false;
    Out = It->second;
    return true;
  }

  /// Parses "[name]" (optionally with "+off" after it in LDA).
  bool parseBracketTag(std::string_view S, TagId &Out, int64_t *Off) {
    if (S.empty() || S.front() != '[')
      return false;
    size_t Close = S.find(']');
    if (Close == std::string_view::npos)
      return false;
    if (!tagByName(S.substr(1, Close - 1), Out))
      return false;
    if (Off) {
      *Off = 0;
      std::string_view Rest = S.substr(Close + 1);
      if (!Rest.empty() && Rest.front() == '+')
        *Off = std::strtoll(std::string(Rest.substr(1)).c_str(), nullptr, 10);
    }
    return true;
  }

  /// Parses "{a,b,c}" into a tag set.
  bool parseTagSet(std::string_view S, TagSet &Out) {
    if (S.size() < 2 || S.front() != '{' || S.back() != '}')
      return false;
    S = S.substr(1, S.size() - 2);
    while (!S.empty()) {
      size_t Comma = S.find(',');
      std::string_view Name =
          Comma == std::string_view::npos ? S : S.substr(0, Comma);
      TagId T;
      if (!tagByName(Name, T))
        return false;
      Out.insert(T);
      if (Comma == std::string_view::npos)
        break;
      S = S.substr(Comma + 1);
    }
    return true;
  }

  MemType memTypeFromSuffix(std::string_view Mnemonic, bool &Ok) {
    Ok = true;
    if (Mnemonic.ends_with(".i8"))
      return MemType::I8;
    if (Mnemonic.ends_with(".i64"))
      return MemType::I64;
    if (Mnemonic.ends_with(".f64"))
      return MemType::F64;
    Ok = false;
    return MemType::I64;
  }

  // -- Directives -----------------------------------------------------------
  bool parseTag(std::string_view V) {
    auto W = words(V);
    if (W.size() < 2)
      return fail("malformed tag directive");
    Tag T;
    T.Name = W[1];
    for (size_t I = 2; I != W.size(); ++I) {
      const std::string &A = W[I];
      if (A.rfind("kind=", 0) == 0) {
        std::string K = A.substr(5);
        if (K == "global")
          T.Kind = TagKind::Global;
        else if (K == "local")
          T.Kind = TagKind::Local;
        else if (K == "heap")
          T.Kind = TagKind::Heap;
        else if (K == "func")
          T.Kind = TagKind::Func;
        else if (K == "spill")
          T.Kind = TagKind::Spill;
        else
          return fail("unknown tag kind '" + K + "'");
      } else if (A.rfind("size=", 0) == 0) {
        T.SizeBytes = static_cast<uint32_t>(std::atoi(A.c_str() + 5));
      } else if (A.rfind("val=", 0) == 0) {
        std::string Ty = A.substr(4);
        T.ValTy = Ty == "i8" ? MemType::I8
                             : Ty == "f64" ? MemType::F64 : MemType::I64;
      } else if (A.rfind("owner=", 0) == 0) {
        FuncId F = M.lookup(A.substr(6));
        if (F == NoFunc)
          return fail("unknown owner function '" + A.substr(6) + "'");
        T.Owner = F;
      } else if (A.rfind("fn=", 0) == 0) {
        FuncId F = M.lookup(A.substr(3));
        if (F == NoFunc)
          return fail("unknown function '" + A.substr(3) + "'");
        T.Fn = F;
      } else if (A == "scalar") {
        T.IsScalar = true;
      } else if (A == "addressed") {
        T.AddressTaken = true;
      } else if (A == "ro") {
        T.ReadOnly = true;
      } else {
        return fail("unknown tag attribute '" + A + "'");
      }
    }
    // Recreate through the table to keep ids dense.
    TagId Id;
    switch (T.Kind) {
    case TagKind::Global:
      Id = M.tags().createGlobal(T.Name, T.SizeBytes, T.IsScalar, T.ValTy,
                                 T.ReadOnly);
      break;
    case TagKind::Local:
      Id = M.tags().createLocal(T.Name, T.Owner, T.SizeBytes, T.IsScalar,
                                T.ValTy);
      break;
    case TagKind::Heap:
      Id = M.tags().createHeap(T.Name);
      break;
    case TagKind::Func:
      Id = M.tags().createFunc(T.Name, T.Fn);
      M.function(T.Fn)->setFuncTag(Id);
      break;
    case TagKind::Spill:
      Id = M.tags().createSpill(T.Name, T.Owner, T.ValTy);
      break;
    }
    Tag &Stored = M.tags().tag(Id);
    Stored.AddressTaken = T.AddressTaken;
    Stored.ReadOnly = T.ReadOnly;
    Stored.IsScalar = T.IsScalar;
    Stored.ValTy = T.ValTy;
    Stored.SizeBytes = T.SizeBytes;
    if (!TagsByName.emplace(T.Name, Id).second)
      return fail("duplicate tag '" + T.Name + "'");
    return true;
  }

  bool parseGlobal(std::string_view V) {
    auto W = words(V);
    if (W.size() < 2)
      return fail("malformed global directive");
    TagId T;
    if (!tagByName(W[1], T))
      return fail("unknown tag '" + W[1] + "'");
    std::vector<uint8_t> Bytes;
    for (size_t I = 2; I != W.size(); ++I) {
      const std::string &A = W[I];
      if (A.rfind("init=", 0) == 0) {
        std::string Hex = A.substr(5);
        if (Hex.size() % 2)
          return fail("odd-length init string");
        auto Nibble = [](char C) -> int {
          if (C >= '0' && C <= '9')
            return C - '0';
          if (C >= 'a' && C <= 'f')
            return C - 'a' + 10;
          return -1;
        };
        for (size_t B = 0; B < Hex.size(); B += 2) {
          int Hi = Nibble(Hex[B]), Lo = Nibble(Hex[B + 1]);
          if (Hi < 0 || Lo < 0)
            return fail("bad hex digit in init");
          Bytes.push_back(static_cast<uint8_t>(Hi * 16 + Lo));
        }
      } else {
        return fail("unknown global attribute '" + A + "'");
      }
    }
    M.addGlobal(T, std::move(Bytes));
    return true;
  }

  // -- Functions -------------------------------------------------------------
  bool parseFunction(std::string_view Header) {
    size_t Paren = Header.find('(');
    size_t Close = Header.find(')', Paren);
    if (Paren == std::string_view::npos || Close == std::string_view::npos)
      return fail("malformed function header");
    std::string Name(Header.substr(5, Paren - 5));
    Function *F = M.function(M.lookup(Name));
    CurF = F;

    // Parameters: rN:i64 or rN:f64, comma separated.
    std::string_view Params = Header.substr(Paren + 1, Close - Paren - 1);
    std::vector<std::pair<Reg, RegType>> ParamList;
    while (!Params.empty()) {
      size_t Comma = Params.find(',');
      std::string_view P =
          Comma == std::string_view::npos ? Params : Params.substr(0, Comma);
      size_t Colon = P.find(':');
      if (Colon == std::string_view::npos)
        return fail("parameter missing type annotation");
      Reg R;
      if (!parseReg(P.substr(0, Colon), R))
        return fail("bad parameter register");
      RegType T =
          P.substr(Colon + 1) == "f64" ? RegType::Flt : RegType::Int;
      ParamList.push_back({R, T});
      if (Comma == std::string_view::npos)
        break;
      Params = Params.substr(Comma + 1);
    }

    std::string_view Rest = Header.substr(Close + 1);
    bool HasRet = Rest.find("->") != std::string_view::npos;
    RegType RetTy = Rest.find("f64") != std::string_view::npos
                        ? RegType::Flt
                        : RegType::Int;
    F->setReturn(HasRet, RetTy);

    // Body: scan ahead to create all blocks first (forward branch targets).
    size_t BodyStart = LineNo + 1;
    size_t End = BodyStart;
    unsigned MaxBlock = 0;
    bool AnyBlock = false;
    while (End < Lines.size() && trimmed(Lines[End]) != "}") {
      std::string_view L = trimmed(Lines[End]);
      if (!L.empty() && L[0] == 'B' && L.find(':') != std::string_view::npos &&
          L[1] >= '0' && L[1] <= '9') {
        MaxBlock = std::max(
            MaxBlock, static_cast<unsigned>(std::atoi(L.data() + 1)));
        AnyBlock = true;
      }
      ++End;
    }
    if (End == Lines.size())
      return fail("unterminated function body");
    if (AnyBlock)
      for (unsigned B = 0; B <= MaxBlock; ++B)
        F->newBlock("");

    for (auto [R, T] : ParamList) {
      F->ensureRegs(R + 1);
      F->setRegType(R, T);
      F->paramRegs().push_back(R);
    }

    // Parse instructions.
    BasicBlock *Cur = nullptr;
    for (LineNo = BodyStart; LineNo != End; ++LineNo) {
      std::string_view L = trimmed(Lines[LineNo]);
      if (L.empty() || L[0] == ';')
        continue;
      if (L[0] == 'B' && L[1] >= '0' && L[1] <= '9') {
        unsigned Id = static_cast<unsigned>(std::atoi(L.data() + 1));
        // Optional "(name)" between id and colon.
        size_t Open = L.find('(');
        size_t CloseP = L.find(')');
        if (Open != std::string_view::npos &&
            CloseP != std::string_view::npos && CloseP > Open)
          F->block(Id)->setName(
              std::string(L.substr(Open + 1, CloseP - Open - 1)));
        Cur = F->block(Id);
        continue;
      }
      if (!Cur)
        return fail("instruction before any block label");
      if (!parseInst(L, *Cur))
        return false;
    }
    LineNo = End + 1; // past "}"

    inferTypes(*F);
    CurF = nullptr;
    return true;
  }

  /// Creates registers on sight.
  void touchReg(Reg R) { CurF->ensureRegs(R + 1); }

  bool parseInst(std::string_view L, BasicBlock &B) {
    auto W = words(L);
    if (W.empty())
      return fail("empty instruction");

    // Optional "rN <-" result prefix.
    Reg Result = NoReg;
    size_t Idx = 0;
    if (W.size() >= 3 && W[1] == "<-") {
      if (!parseReg(W[0], Result))
        return fail("bad result register");
      touchReg(Result);
      Idx = 2;
    }
    if (Idx >= W.size())
      return fail("missing mnemonic");
    const std::string &Mn = W[Idx];

    auto FinishOps = [&](Instruction &I) {
      I.Result = Result;
      B.append(std::move(I));
      return true;
    };

    // Control flow.
    if (Mn == "BR") {
      // BR rC ? Bt : Bf   (six words including '?' and ':')
      if (W.size() != Idx + 6 || W[Idx + 2] != "?" || W[Idx + 4] != ":")
        return fail("malformed BR");
      Instruction I(Opcode::Br);
      Reg C;
      if (!parseReg(W[Idx + 1], C))
        return fail("bad BR condition");
      touchReg(C);
      I.Ops = {C};
      I.Target0 = static_cast<BlockId>(std::atoi(W[Idx + 3].c_str() + 1));
      I.Target1 = static_cast<BlockId>(std::atoi(W[Idx + 5].c_str() + 1));
      return FinishOps(I);
    }
    if (Mn == "JMP") {
      Instruction I(Opcode::Jmp);
      I.Target0 = static_cast<BlockId>(std::atoi(W[Idx + 1].c_str() + 1));
      return FinishOps(I);
    }
    if (Mn == "RET") {
      Instruction I(Opcode::Ret);
      if (W.size() > Idx + 1) {
        Reg R;
        if (!parseReg(W[Idx + 1], R))
          return fail("bad RET operand");
        touchReg(R);
        I.Ops = {R};
      }
      return FinishOps(I);
    }

    // Immediates / addresses / scalar memory.
    if (Mn == "LOADI") {
      Instruction I(Opcode::LoadI);
      I.Imm = std::strtoll(W[Idx + 1].c_str(), nullptr, 10);
      return FinishOps(I);
    }
    if (Mn == "LOADF") {
      Instruction I(Opcode::LoadF);
      I.FImm = std::strtod(W[Idx + 1].c_str(), nullptr);
      return FinishOps(I);
    }
    if (Mn == "LDA") {
      Instruction I(Opcode::LoadAddr);
      if (!parseBracketTag(W[Idx + 1], I.Tag, &I.Imm))
        return fail("bad LDA tag");
      return FinishOps(I);
    }
    if (Mn == "SLD") {
      Instruction I(Opcode::ScalarLoad);
      if (!parseBracketTag(W[Idx + 1], I.Tag, nullptr))
        return fail("bad SLD tag");
      I.MemTy = M.tags().tag(I.Tag).ValTy;
      return FinishOps(I);
    }
    if (Mn == "SST") {
      Instruction I(Opcode::ScalarStore);
      if (!parseBracketTag(W[Idx + 1], I.Tag, nullptr))
        return fail("bad SST tag");
      I.MemTy = M.tags().tag(I.Tag).ValTy;
      Reg V;
      if (!parseReg(W[Idx + 2], V))
        return fail("bad SST value");
      touchReg(V);
      I.Ops = {V};
      return FinishOps(I);
    }

    // Pointer memory: PLD.x / CLD.x / PST.x
    if (Mn.rfind("PLD", 0) == 0 || Mn.rfind("CLD", 0) == 0) {
      bool Ok;
      MemType MT = memTypeFromSuffix(Mn, Ok);
      if (!Ok)
        return fail("missing width suffix on load");
      Instruction I(Mn[0] == 'P' ? Opcode::Load : Opcode::ConstLoad);
      I.MemTy = MT;
      std::string_view AddrW = W[Idx + 1];
      if (AddrW.size() < 3 || AddrW.front() != '[')
        return fail("bad load address");
      Reg A;
      if (!parseReg(AddrW.substr(1, AddrW.size() - 2), A))
        return fail("bad load address register");
      touchReg(A);
      I.Ops = {A};
      if (W.size() > Idx + 2 && !parseTagSet(W[Idx + 2], I.Tags))
        return fail("bad load tag set");
      return FinishOps(I);
    }
    if (Mn.rfind("PST", 0) == 0) {
      bool Ok;
      MemType MT = memTypeFromSuffix(Mn, Ok);
      if (!Ok)
        return fail("missing width suffix on store");
      Instruction I(Opcode::Store);
      I.MemTy = MT;
      std::string_view AddrW = W[Idx + 1];
      Reg A, V;
      if (AddrW.size() < 3 || AddrW.front() != '[' ||
          !parseReg(AddrW.substr(1, AddrW.size() - 2), A))
        return fail("bad store address");
      if (!parseReg(W[Idx + 2], V))
        return fail("bad store value");
      touchReg(A);
      touchReg(V);
      I.Ops = {A, V};
      if (W.size() > Idx + 3 && !parseTagSet(W[Idx + 3], I.Tags))
        return fail("bad store tag set");
      return FinishOps(I);
    }

    // Calls: JSR name(args) mod{..} ref{..} [site=[tag]]
    //        IJSR [rC](args) mod{..} ref{..}
    if (Mn.rfind("JSR", 0) == 0 || Mn.rfind("IJSR", 0) == 0) {
      bool Indirect = Mn[0] == 'I';
      // Reassemble the full remainder: the arg list has no spaces, but the
      // mnemonic word may already contain "name(".
      std::string RestStr;
      for (size_t WI = Idx + (Indirect || Mn == "JSR" ? 1 : 0); // see below
           WI < W.size(); ++WI) {
        if (!RestStr.empty())
          RestStr += " ";
        RestStr += W[WI];
      }
      // The printer emits "JSR name(r1,r2) mod{..} ref{..}" — name( is the
      // next word after JSR.
      std::string_view Rest = RestStr;
      Instruction I(Indirect ? Opcode::CallIndirect : Opcode::Call);
      size_t Open = Rest.find('(');
      size_t Close = Rest.find(')');
      if (Open == std::string_view::npos || Close == std::string_view::npos)
        return fail("malformed call");
      if (Indirect) {
        // [rC](args)
        std::string_view CalleeW = Rest.substr(0, Open);
        Reg C;
        if (CalleeW.size() < 3 || CalleeW.front() != '[' ||
            !parseReg(CalleeW.substr(1, CalleeW.size() - 2), C))
          return fail("bad indirect callee");
        touchReg(C);
        I.Ops.push_back(C);
      } else {
        std::string Name(Rest.substr(0, Open));
        FuncId Callee = M.lookup(Name);
        if (Callee == NoFunc)
          return fail("unknown callee '" + Name + "'");
        I.Callee = Callee;
      }
      // Arguments.
      std::string_view Args = Rest.substr(Open + 1, Close - Open - 1);
      while (!Args.empty()) {
        size_t Comma = Args.find(',');
        std::string_view AW =
            Comma == std::string_view::npos ? Args : Args.substr(0, Comma);
        Reg R;
        if (!parseReg(AW, R))
          return fail("bad call argument");
        touchReg(R);
        I.Ops.push_back(R);
        if (Comma == std::string_view::npos)
          break;
        Args = Args.substr(Comma + 1);
      }
      // mod{...} ref{...} site=[tag]
      std::string_view Tail = Rest.substr(Close + 1);
      for (const std::string &WTail : words(Tail)) {
        std::string_view TW = WTail;
        if (TW.rfind("mod", 0) == 0) {
          if (!parseTagSet(TW.substr(3), I.Mods))
            return fail("bad mod set");
        } else if (TW.rfind("ref", 0) == 0) {
          if (!parseTagSet(TW.substr(3), I.Refs))
            return fail("bad ref set");
        } else if (TW.rfind("site=", 0) == 0) {
          if (!parseBracketTag(TW.substr(5), I.Tag, nullptr))
            return fail("bad allocation site tag");
        } else {
          return fail("unexpected call annotation '" + WTail + "'");
        }
      }
      return FinishOps(I);
    }

    // Phi: PHI [B1:r2] [B3:r4]
    if (Mn == "PHI") {
      Instruction I(Opcode::Phi);
      for (size_t WI = Idx + 1; WI < W.size(); ++WI) {
        std::string_view P = W[WI];
        if (P.size() < 6 || P.front() != '[' || P.back() != ']')
          return fail("bad phi incoming");
        P = P.substr(1, P.size() - 2);
        size_t Colon = P.find(':');
        BlockId BId = static_cast<BlockId>(
            std::atoi(std::string(P.substr(1, Colon - 1)).c_str()));
        Reg R;
        if (!parseReg(P.substr(Colon + 1), R))
          return fail("bad phi register");
        touchReg(R);
        I.PhiIns.push_back({BId, R});
      }
      return FinishOps(I);
    }

    // Generic register forms: "OP rA[, rB]".
    auto It = mnemonics().find(Mn);
    if (It == mnemonics().end())
      return fail("unknown mnemonic '" + Mn + "'");
    Instruction I(It->second);
    for (size_t WI = Idx + 1; WI < W.size(); ++WI) {
      Reg R;
      if (!parseReg(W[WI], R))
        return fail("bad operand '" + W[WI] + "'");
      touchReg(R);
      I.Ops.push_back(R);
    }
    return FinishOps(I);
  }

  /// Infers Flt register types from definitions, propagating through
  /// copies and phis to a fixed point.
  void inferTypes(Function &F) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &B : F.blocks()) {
        for (const auto &IP : B->insts()) {
          const Instruction &I = *IP;
          if (!I.hasResult() || F.regType(I.Result) == RegType::Flt)
            continue;
          bool Flt = false;
          switch (I.Op) {
          case Opcode::LoadF:
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv:
          case Opcode::FNeg:
          case Opcode::IntToFp:
            Flt = true;
            break;
          case Opcode::ScalarLoad:
            Flt = M.tags().tag(I.Tag).ValTy == MemType::F64;
            break;
          case Opcode::Load:
          case Opcode::ConstLoad:
            Flt = I.MemTy == MemType::F64;
            break;
          case Opcode::Copy:
            Flt = F.regType(I.Ops[0]) == RegType::Flt;
            break;
          case Opcode::Phi:
            for (const auto &[Pred, R] : I.PhiIns)
              Flt |= F.regType(R) == RegType::Flt;
            break;
          case Opcode::Call:
            Flt = M.function(I.Callee)->returnsValue() &&
                  M.function(I.Callee)->returnType() == RegType::Flt;
            break;
          default:
            break;
          }
          if (Flt) {
            F.setRegType(I.Result, RegType::Flt);
            Changed = true;
          }
        }
      }
    }
  }

  Module &M;
  std::string &Err;
  std::vector<std::string> Lines;
  size_t LineNo = 0;
  Function *CurF = nullptr;
  std::map<std::string, TagId> TagsByName;
};

} // namespace

bool rpcc::parseModule(const std::string &Text, Module &M,
                       std::string &Err) {
  return Parser(Text, M, Err).run();
}
