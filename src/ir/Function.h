//===- ir/Function.h - IL function ------------------------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef RPCC_IR_FUNCTION_H
#define RPCC_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace rpcc {

/// Intrinsic operations implemented by the interpreter rather than by IL
/// bodies. Each has a fixed MOD/REF summary known to the analyzer.
enum class BuiltinKind : uint8_t {
  None,
  Malloc,     ///< malloc(bytes) -> ptr; introduces a per-call-site heap tag
  Free,       ///< free(ptr)
  PrintInt,   ///< print_int(i)
  PrintChar,  ///< print_char(c)
  PrintFloat, ///< print_float(d)
  PrintStr,   ///< print_str(ptr to NUL-terminated bytes)
  Sqrt,       ///< sqrt(d) -> d
  Sin,        ///< sin(d) -> d
  Cos,        ///< cos(d) -> d
  Pow         ///< pow(base, exp) -> d
};

/// A function: a register file description plus a list of basic blocks.
/// Block ids always equal their index in blocks(); compactBlocks() restores
/// this invariant after removals.
class Function {
public:
  Function(FuncId Id, std::string Name) : Id(Id), Name(std::move(Name)) {}

  FuncId id() const { return Id; }
  const std::string &name() const { return Name; }

  bool isBuiltin() const { return Builtin != BuiltinKind::None; }
  BuiltinKind builtin() const { return Builtin; }
  void setBuiltin(BuiltinKind B) { Builtin = B; }

  /// Creates a fresh virtual register of type \p T.
  Reg newReg(RegType T) {
    RegTypes.push_back(T);
    return static_cast<Reg>(RegTypes.size() - 1);
  }

  RegType regType(Reg R) const {
    assert(R < RegTypes.size() && "invalid register");
    return RegTypes[R];
  }
  size_t numRegs() const { return RegTypes.size(); }

  /// Replaces the virtual register file with \p NumPhysical untyped slots;
  /// called by the register allocator after rewriting to physical numbers.
  void resetRegisters(unsigned NumPhysical) {
    RegTypes.assign(NumPhysical, RegType::Int);
  }

  /// Grows the register file to at least \p N integer registers; used by
  /// the IL parser, which discovers register numbers textually.
  void ensureRegs(size_t N) {
    if (RegTypes.size() < N)
      RegTypes.resize(N, RegType::Int);
  }

  /// Reassigns one register's type (IL parser type inference).
  void setRegType(Reg R, RegType T) {
    assert(R < RegTypes.size() && "invalid register");
    RegTypes[R] = T;
  }

  std::vector<Reg> &paramRegs() { return Params; }
  const std::vector<Reg> &paramRegs() const { return Params; }

  bool returnsValue() const { return HasRet; }
  RegType returnType() const { return RetTy; }
  void setReturn(bool Has, RegType T) {
    HasRet = Has;
    RetTy = T;
  }

  /// The tag naming this function when its address is taken.
  TagId funcTag() const { return FnTag; }
  void setFuncTag(TagId T) { FnTag = T; }

  BasicBlock *newBlock(std::string BlockName) {
    auto B = std::make_unique<BasicBlock>(
        static_cast<BlockId>(Blocks.size()), std::move(BlockName));
    Blocks.push_back(std::move(B));
    return Blocks.back().get();
  }

  size_t numBlocks() const { return Blocks.size(); }
  BasicBlock *block(BlockId Id) {
    assert(Id < Blocks.size() && "invalid block id");
    return Blocks[Id].get();
  }
  const BasicBlock *block(BlockId Id) const {
    assert(Id < Blocks.size() && "invalid block id");
    return Blocks[Id].get();
  }
  BasicBlock *entry() { return Blocks.empty() ? nullptr : Blocks[0].get(); }
  const BasicBlock *entry() const {
    return Blocks.empty() ? nullptr : Blocks[0].get();
  }

  std::vector<std::unique_ptr<BasicBlock>> &blocks() { return Blocks; }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  /// Removes the blocks whose ids are flagged in \p Dead (entry must stay),
  /// renumbers survivors, and rewrites all branch targets and phi incoming
  /// lists. Predecessor/successor lists must be recomputed afterwards.
  void removeBlocks(const std::vector<bool> &Dead);

  /// Deep copy preserving every id (function, blocks, registers): block
  /// order, register file, params, return shape, builtin kind, and function
  /// tag all carry over; blocks are cloned instruction by instruction. The
  /// clone shares no storage with this function.
  std::unique_ptr<Function> clone() const;

private:
  FuncId Id;
  std::string Name;
  BuiltinKind Builtin = BuiltinKind::None;
  std::vector<RegType> RegTypes;
  std::vector<Reg> Params;
  bool HasRet = false;
  RegType RetTy = RegType::Int;
  TagId FnTag = NoTag;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace rpcc

#endif // RPCC_IR_FUNCTION_H
