//===- ir/IRPrinter.h - Textual IL printer ----------------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef RPCC_IR_IRPRINTER_H
#define RPCC_IR_IRPRINTER_H

#include "ir/Module.h"

#include <string>

namespace rpcc {

/// Renders one instruction in ILOC-flavored text, e.g.
///   "r3 <- SLD [count]", "SST [count] r3", "r7 <- PLD.i64 [r6] {A,B}",
///   "r9 <- JSR foo(r1) mod{g} ref{g,h}", "BR r2 ? B1 : B2".
std::string printInst(const Module &M, const Function &F,
                      const Instruction &I);

/// Renders a whole function: header, blocks with labels, instructions.
std::string printFunction(const Module &M, const Function &F);

/// Renders the tag table and every non-builtin function.
std::string printModule(const Module &M);

/// Renders the function's CFG in Graphviz dot format, one record node per
/// block with its instructions; loop back edges render like any other edge.
std::string printCfgDot(const Module &M, const Function &F);

} // namespace rpcc

#endif // RPCC_IR_IRPRINTER_H
