//===- ir/IRPrinter.cpp ---------------------------------------------------===//

#include "ir/IRPrinter.h"

#include <cstdio>
#include <sstream>

using namespace rpcc;

namespace {

std::string regName(Reg R) {
  if (R == NoReg)
    return "r?";
  return "r" + std::to_string(R);
}

std::string memSuffix(MemType T) {
  switch (T) {
  case MemType::I8:
    return ".i8";
  case MemType::I64:
    return ".i64";
  case MemType::F64:
    return ".f64";
  }
  return "";
}

// The printer is called from the verifier's failure path, so it must render
// *invalid* IL — dangling tag ids, out-of-range callees, missing operands —
// without tripping an assert of its own. Anything out of range prints as a
// clearly-marked placeholder instead.
std::string tagName(const Module &M, TagId T) {
  if (T == NoTag)
    return "tag?";
  if (T >= M.tags().size())
    return "tag#" + std::to_string(T) + "?";
  return M.tags().tag(T).Name;
}

std::string funcName(const Module &M, FuncId F) {
  if (F == NoFunc)
    return "func?";
  if (F >= M.numFunctions())
    return "func#" + std::to_string(F) + "?";
  return M.function(F)->name();
}

std::string tagSetStr(const Module &M, const TagSet &S) {
  std::string Out = "{";
  bool First = true;
  for (TagId T : S) {
    if (!First)
      Out += ",";
    First = false;
    Out += tagName(M, T);
  }
  Out += "}";
  return Out;
}

} // namespace

std::string rpcc::printInst(const Module &M, const Function &F,
                            const Instruction &I) {
  std::ostringstream OS;
  auto Tag = [&](TagId T) { return "[" + tagName(M, T) + "]"; };
  auto Op = [&](size_t K) {
    return K < I.Ops.size() ? regName(I.Ops[K]) : std::string("r?");
  };

  switch (I.Op) {
  case Opcode::LoadI:
    OS << regName(I.Result) << " <- LOADI " << I.Imm;
    return OS.str();
  case Opcode::LoadF: {
    // %.17g survives a text round-trip exactly.
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.17g", I.FImm);
    OS << regName(I.Result) << " <- LOADF " << Buf;
    return OS.str();
  }
  case Opcode::LoadAddr:
    OS << regName(I.Result) << " <- LDA " << Tag(I.Tag);
    if (I.Imm)
      OS << "+" << I.Imm;
    return OS.str();
  case Opcode::ScalarLoad:
    OS << regName(I.Result) << " <- SLD " << Tag(I.Tag);
    return OS.str();
  case Opcode::ScalarStore:
    OS << "SST " << Tag(I.Tag) << " " << Op(0);
    return OS.str();
  case Opcode::Load:
  case Opcode::ConstLoad:
    OS << regName(I.Result) << " <- " << opcodeName(I.Op) << memSuffix(I.MemTy)
       << " [" << Op(0) << "] " << tagSetStr(M, I.Tags);
    return OS.str();
  case Opcode::Store:
    OS << "PST" << memSuffix(I.MemTy) << " [" << Op(0) << "] " << Op(1) << " "
       << tagSetStr(M, I.Tags);
    return OS.str();
  case Opcode::Call: {
    if (I.hasResult())
      OS << regName(I.Result) << " <- ";
    OS << "JSR " << funcName(M, I.Callee) << "(";
    for (size_t A = 0; A != I.Ops.size(); ++A)
      OS << (A ? "," : "") << regName(I.Ops[A]);
    OS << ") mod" << tagSetStr(M, I.Mods) << " ref" << tagSetStr(M, I.Refs);
    if (I.Tag != NoTag) // allocation call sites carry their heap tag
      OS << " site=[" << tagName(M, I.Tag) << "]";
    return OS.str();
  }
  case Opcode::CallIndirect: {
    if (I.hasResult())
      OS << regName(I.Result) << " <- ";
    OS << "IJSR [" << Op(0) << "](";
    for (size_t A = 1; A < I.Ops.size(); ++A)
      OS << (A > 1 ? "," : "") << regName(I.Ops[A]);
    OS << ") mod" << tagSetStr(M, I.Mods) << " ref" << tagSetStr(M, I.Refs);
    return OS.str();
  }
  case Opcode::Br:
    OS << "BR " << Op(0) << " ? B" << I.Target0 << " : B" << I.Target1;
    return OS.str();
  case Opcode::Jmp:
    OS << "JMP B" << I.Target0;
    return OS.str();
  case Opcode::Ret:
    OS << "RET";
    if (!I.Ops.empty())
      OS << " " << regName(I.Ops[0]);
    return OS.str();
  case Opcode::Phi: {
    OS << regName(I.Result) << " <- PHI";
    for (const auto &[B, R] : I.PhiIns)
      OS << " [B" << B << ":" << regName(R) << "]";
    return OS.str();
  }
  default:
    break;
  }

  // Generic register-to-register form.
  OS << regName(I.Result) << " <- " << opcodeName(I.Op);
  for (size_t A = 0; A != I.Ops.size(); ++A)
    OS << (A ? ", " : " ") << regName(I.Ops[A]);
  return OS.str();
}

std::string rpcc::printFunction(const Module &M, const Function &F) {
  std::ostringstream OS;
  OS << "func " << F.name() << "(";
  for (size_t P = 0; P != F.paramRegs().size(); ++P) {
    Reg R = F.paramRegs()[P];
    OS << (P ? "," : "") << regName(R) << ":"
       << (F.regType(R) == RegType::Flt ? "f64" : "i64");
  }
  OS << ")";
  if (F.returnsValue())
    OS << " -> " << (F.returnType() == RegType::Flt ? "f64" : "i64");
  OS << " {\n";
  for (const auto &B : F.blocks()) {
    OS << "B" << B->id();
    if (!B->name().empty())
      OS << " (" << B->name() << ")";
    OS << ":\n";
    for (const auto &I : B->insts())
      OS << "  " << printInst(M, F, *I) << "\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string rpcc::printCfgDot(const Module &M, const Function &F) {
  std::ostringstream OS;
  OS << "digraph \"" << F.name() << "\" {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  auto Escape = [](const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out.push_back('\\');
      Out.push_back(C);
    }
    return Out;
  };
  for (const auto &B : F.blocks()) {
    OS << "  B" << B->id() << " [label=\"B" << B->id();
    if (!B->name().empty())
      OS << " (" << Escape(B->name()) << ")";
    OS << "\\l";
    for (const auto &I : B->insts())
      OS << Escape(printInst(M, F, *I)) << "\\l";
    OS << "\"];\n";
    const Instruction *T = B->terminator();
    if (!T)
      continue;
    if (T->Op == Opcode::Br) {
      OS << "  B" << B->id() << " -> B" << T->Target0
         << " [label=\"T\"];\n";
      OS << "  B" << B->id() << " -> B" << T->Target1
         << " [label=\"F\"];\n";
    } else if (T->Op == Opcode::Jmp) {
      OS << "  B" << B->id() << " -> B" << T->Target0 << ";\n";
    }
  }
  OS << "}\n";
  return OS.str();
}

std::string rpcc::printModule(const Module &M) {
  std::ostringstream OS;
  // Tag directives are real syntax (the IL parser reads them back), not
  // comments.
  for (const Tag &T : M.tags()) {
    OS << "tag " << T.Name << " kind=";
    switch (T.Kind) {
    case TagKind::Global: OS << "global"; break;
    case TagKind::Local: OS << "local"; break;
    case TagKind::Heap: OS << "heap"; break;
    case TagKind::Func: OS << "func"; break;
    case TagKind::Spill: OS << "spill"; break;
    }
    OS << " size=" << T.SizeBytes;
    OS << " val=" << (T.ValTy == MemType::I8
                          ? "i8"
                          : T.ValTy == MemType::F64 ? "f64" : "i64");
    // funcName tolerates dangling ids: the printer also renders corrupted
    // modules from the verifier's failure path (see the comment atop
    // tagName), and Module::function would assert on them.
    if (T.Kind == TagKind::Local || T.Kind == TagKind::Spill)
      OS << " owner=" << funcName(M, T.Owner);
    if (T.Kind == TagKind::Func)
      OS << " fn=" << funcName(M, T.Fn);
    if (T.IsScalar)
      OS << " scalar";
    if (T.AddressTaken)
      OS << " addressed";
    if (T.ReadOnly)
      OS << " ro";
    OS << "\n";
  }
  // Global storage directives, with any nonzero initializer bytes in hex.
  for (const GlobalInit &G : M.globals()) {
    OS << "global " << tagName(M, G.Tag);
    bool AnyNonZero = false;
    for (uint8_t B : G.Bytes)
      AnyNonZero |= B != 0;
    if (AnyNonZero) {
      OS << " init=";
      static const char *Hex = "0123456789abcdef";
      for (uint8_t B : G.Bytes) {
        OS << Hex[B >> 4] << Hex[B & 15];
      }
    }
    OS << "\n";
  }
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    const Function *F = M.function(static_cast<FuncId>(I));
    if (F->isBuiltin())
      continue;
    OS << "\n" << printFunction(M, *F);
  }
  return OS.str();
}
