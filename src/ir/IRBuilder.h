//===- ir/IRBuilder.h - Convenience instruction factory ---------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Appends instructions to a current block, allocating result registers with
/// the right type. Used by the frontend lowering, by tests that hand-build
/// IL (e.g. the Figure 2 replica), and by the examples.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_IR_IRBUILDER_H
#define RPCC_IR_IRBUILDER_H

#include "ir/Function.h"
#include "ir/Module.h"

namespace rpcc {

class IRBuilder {
public:
  IRBuilder(Module &M, Function *F) : M(M), F(F) {}

  Function *function() { return F; }

  void setBlock(BasicBlock *B) { BB = B; }
  BasicBlock *blockPtr() { return BB; }

  /// True if the current block already ends in a terminator; further appends
  /// would be unreachable and are rejected by append().
  bool blockClosed() const { return BB && BB->terminator(); }

  // -- Pure computation --------------------------------------------------
  Reg emitBin(Opcode Op, Reg A, Reg B, RegType Ty);
  Reg emitUn(Opcode Op, Reg A, RegType Ty);
  Reg emitLoadI(int64_t V);
  Reg emitLoadF(double V);
  Reg emitCopy(Reg Src);
  /// Copy into a specific existing register (for non-SSA variable updates).
  void emitCopyTo(Reg Dst, Reg Src);
  Reg emitLoadAddr(TagId T, int64_t Offset = 0);

  // -- Memory ------------------------------------------------------------
  Reg emitScalarLoad(TagId T);
  void emitScalarStore(TagId T, Reg V);
  Reg emitLoad(Reg Addr, MemType Ty, TagSet Tags);
  Reg emitConstLoad(Reg Addr, MemType Ty, TagSet Tags);
  void emitStore(Reg Addr, Reg V, MemType Ty, TagSet Tags);

  // -- Calls and control -------------------------------------------------
  /// Emits a direct call; returns the result register or NoReg.
  Reg emitCall(Function *Callee, const std::vector<Reg> &Args);
  Reg emitCallIndirect(Reg Callee, const std::vector<Reg> &Args, bool HasRet,
                       RegType RetTy);
  void emitBr(Reg Cond, BlockId IfTrue, BlockId IfFalse);
  void emitJmp(BlockId Target);
  void emitRet();
  void emitRet(Reg V);
  Reg emitPhi(RegType Ty, std::vector<std::pair<BlockId, Reg>> Ins);

private:
  Instruction *append(Instruction I);

  Module &M;
  Function *F;
  BasicBlock *BB = nullptr;
};

} // namespace rpcc

#endif // RPCC_IR_IRBUILDER_H
