//===- fuzz/FaultInjector.h - Analysis widening and IL corruption -*- C++ -*-=//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two distinct fault models over the IL:
///
/// **Widening** degrades alias-analysis precision without breaking it: tag
/// lists on pointer memory operations and MOD/REF summaries on calls are
/// randomly grown with other tags that already appear in some tag set.
/// Every pass downstream treats tag lists as may-information, so a widened
/// module must compile to a program with identical observable behavior —
/// only the operation counts may regress. This is injected through
/// CompilerConfig::PostAnalysisHook, i.e. it flows through the real
/// pipeline exactly where real analysis results do.
///
/// **Corruption** breaks a structural invariant outright — a dangling tag
/// id, an out-of-range register or branch target, a missing operand, a
/// stripped terminator, or a module-level table entry that dangles (a
/// Local/Spill tag whose owner function does not exist, a global
/// initializer naming a nonexistent tag). The verifier must reject every
/// corrupted module with a diagnostic; crashing (or accepting) is a bug.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_FUZZ_FAULTINJECTOR_H
#define RPCC_FUZZ_FAULTINJECTOR_H

#include "ir/Module.h"

#include <cstdint>
#include <string>

namespace rpcc {

/// Grows tag lists and call MOD/REF summaries with extra already-addressed
/// tags, seeded by \p Seed. Returns the number of sets widened. Sets are
/// only ever grown and only when non-empty (an empty pointer tag list means
/// "unanalyzed", and growing it to a singleton would *sharpen* it).
unsigned widenAnalysis(Module &M, uint64_t Seed);

/// Applies exactly one structural corruption to \p M, chosen by \p Seed,
/// and describes it in \p Desc. Returns false if the module has no
/// applicable site (e.g. no instructions at all).
bool corruptModule(Module &M, uint64_t Seed, std::string &Desc);

} // namespace rpcc

#endif // RPCC_FUZZ_FAULTINJECTOR_H
