//===- fuzz/Reducer.cpp ---------------------------------------------------===//

#include "fuzz/Reducer.h"

#include <algorithm>
#include <vector>

using namespace rpcc;

namespace {

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t NL = S.find('\n', Pos);
    if (NL == std::string::npos) {
      Lines.push_back(S.substr(Pos));
      break;
    }
    Lines.push_back(S.substr(Pos, NL - Pos));
    Pos = NL + 1;
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines,
                      const std::vector<bool> &Keep) {
  std::string Out;
  for (size_t I = 0; I != Lines.size(); ++I) {
    if (!Keep[I])
      continue;
    Out += Lines[I];
    Out += '\n';
  }
  return Out;
}

} // namespace

std::string rpcc::reduceProgram(const std::string &Source,
                                const FailurePredicate &StillFails,
                                ReduceStats *Stats) {
  std::vector<std::string> Lines = splitLines(Source);
  std::vector<bool> Keep(Lines.size(), true);
  unsigned Runs = 0;
  auto Test = [&](const std::vector<bool> &K) {
    ++Runs;
    return StillFails(joinLines(Lines, K));
  };

  size_t Alive = Lines.size();
  if (Stats)
    Stats->InitialLines = Alive;
  if (!Test(Keep)) {
    // The input doesn't reproduce; nothing to minimize.
    if (Stats) {
      Stats->PredicateRuns = Runs;
      Stats->FinalLines = Alive;
    }
    return Source;
  }

  size_t Granularity = 2;
  while (Alive >= 1) {
    // Partition the currently-live lines into `Granularity` chunks.
    std::vector<size_t> Live;
    for (size_t I = 0; I != Lines.size(); ++I)
      if (Keep[I])
        Live.push_back(I);
    if (Granularity > Live.size())
      Granularity = Live.size();
    if (Granularity < 2 && Live.size() > 1)
      Granularity = 2;

    bool Reduced = false;
    for (size_t C = 0; C != Granularity && !Reduced; ++C) {
      size_t Lo = Live.size() * C / Granularity;
      size_t Hi = Live.size() * (C + 1) / Granularity;
      if (Lo == Hi)
        continue;
      // Try deleting this chunk (i.e. keep its complement).
      std::vector<bool> K = Keep;
      for (size_t I = Lo; I != Hi; ++I)
        K[Live[I]] = false;
      if (Test(K)) {
        Keep = std::move(K);
        Alive = Live.size() - (Hi - Lo);
        Granularity = Granularity > 2 ? Granularity - 1 : 2;
        Reduced = true;
      }
    }
    if (!Reduced) {
      if (Granularity >= Live.size() || Live.size() <= 1)
        break; // 1-minimal at line granularity
      Granularity = std::min(Granularity * 2, Live.size());
    }
  }

  if (Stats) {
    Stats->PredicateRuns = Runs;
    Stats->FinalLines = Alive;
  }
  return joinLines(Lines, Keep);
}
