//===- fuzz/Campaign.h - Parallel differential fuzz campaigns --*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seed loop behind `rpfuzz`: generate a deterministic program per seed,
/// run the diff / widen / corrupt oracles, and render a verdict log. Seeds
/// are embarrassingly parallel — every oracle run builds its own modules —
/// so the campaign fans seeds across CampaignOptions::Jobs workers while
/// still emitting the log in strict seed order: the log (and the failure
/// count) is byte-identical for any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_FUZZ_CAMPAIGN_H
#define RPCC_FUZZ_CAMPAIGN_H

#include "driver/JobRunner.h"
#include "interp/Interpreter.h"

#include <cstdint>
#include <cstdio>
#include <string>

namespace rpcc {

class TraceCollector;

struct CampaignOptions {
  uint64_t Seed0 = 1;
  uint64_t Runs = 100;
  bool Quick = false; ///< quickMatrix() instead of fullMatrix()
  bool DoDiff = true;
  bool DoWiden = true;
  bool DoCorrupt = true;
  /// Worker threads across seeds; 1 = serial. Seeds are checked in blocks
  /// and reported in seed order, so the log does not depend on Jobs.
  unsigned Jobs = 1;
  /// Seeds between "N/M seeds" progress lines (0 disables them).
  uint64_t ProgressInterval = 100;
  /// How many failing programs to print in full.
  uint64_t MaxPrintedPrograms = 3;
  /// When non-null, every seed adds a span (category "seed", track = the
  /// worker that checked it) to this shared collector.
  TraceCollector *Trace = nullptr;
  /// Interpreter engine for every oracle execution. Campaigns pinned to
  /// each engine must produce identical verdict logs.
  InterpEngine Engine = DefaultInterpEngine;
  /// Share the compiled pipeline prefix across one seed's oracle runs (the
  /// diff matrix alone compiles each program dozens of times). Verdict logs
  /// are byte-identical with the cache on or off; `--no-compile-cache`
  /// turns it off for A/B runs. The corrupt oracle never uses the cache —
  /// it must corrupt freshly lowered, un-normalized IL.
  bool UseCompileCache = true;
  /// Check every seed in a forked sandbox (driver/JobRunner): a crashing,
  /// hanging, or OOMing seed becomes a classified FAIL line and the
  /// campaign continues. Healthy seeds produce byte-identical logs either
  /// way.
  bool Sandbox = false;
  /// Resource caps for sandboxed seed checks.
  SandboxLimits Limits;
  /// Deliberately crash/hang/OOM a deterministic subset of sandboxed
  /// workers (`rpfuzz --inject-worker-faults`): seeds ≡ 3, 9, 15 (mod 20)
  /// crash, hang, and OOM respectively. End-to-end proof that the
  /// classifier and the fail-soft paths work; requires Sandbox.
  bool InjectWorkerFaults = false;
  /// When non-empty, every failing seed's generated program is written to
  /// `<ReproducerDir>/seed-<N>.c` (the directory is created if needed).
  std::string ReproducerDir;
  /// When non-null, every sandboxed seed appends a JobRecord here
  /// (rendered into `--timing-json` as the "jobs" array).
  JobLog *Log = nullptr;
};

struct CampaignResult {
  uint64_t Failures = 0;
  /// Abnormal-child breakdown (each also counts in Failures). Nonzero only
  /// with CampaignOptions::Sandbox; drives the process exit severity
  /// (jobExitSeverity: crash > oom > timeout).
  uint64_t Crashed = 0, TimedOut = 0, OomKilled = 0;
  /// The full verdict log: FAIL lines, failing programs, progress lines,
  /// the corpus-level promotion check, and the summary line. Byte-identical
  /// for equal options regardless of CampaignOptions::Jobs.
  std::string Log;
};

/// Runs the campaign. When \p Live is non-null, log text is also streamed
/// there (block by block, in seed order) as the campaign progresses.
CampaignResult runCampaign(const CampaignOptions &Opts,
                           std::FILE *Live = nullptr);

} // namespace rpcc

#endif // RPCC_FUZZ_CAMPAIGN_H
