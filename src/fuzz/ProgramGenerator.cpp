//===- fuzz/ProgramGenerator.cpp ------------------------------------------===//

#include "fuzz/ProgramGenerator.h"

#include <random>
#include <sstream>
#include <vector>

using namespace rpcc;

namespace {

class Generator {
public:
  Generator(uint64_t Seed, const GeneratorOptions &Opts)
      : Rng(Seed), Opts(Opts) {}

  std::string run() {
    emitGlobals();
    emitFixedHelpers();
    for (unsigned K = 0; K != Opts.NumHelpers; ++K)
      emitHelper(K);
    emitMain();
    return Out.str();
  }

private:
  unsigned pick(unsigned N) { return static_cast<unsigned>(Rng() % N); }
  bool chance(unsigned Pct) { return pick(100) < Pct; }

  void indent() {
    for (unsigned I = 0; I != Depth; ++I)
      Out << "  ";
  }

  // -- Expressions -----------------------------------------------------------

  /// Any int lvalue that may legally be assigned right now (never an active
  /// induction variable).
  std::string intTarget() {
    unsigned N = pick(10);
    if (N < 5)
      return "g" + std::to_string(pick(5));
    if (N < 8 && !Locals.empty())
      return Locals[pick(static_cast<unsigned>(Locals.size()))];
    if (N < 9 && HaveLocs)
      return "loc" + std::to_string(pick(2));
    return "arr[(" + intExpr(1) + ") & 31]";
  }

  /// Something whose address a helper may write through.
  std::string addressable() {
    switch (pick(HaveLocs ? 4 : 3)) {
    case 0: return "g" + std::to_string(pick(5));
    case 3: return "loc" + std::to_string(pick(2));
    case 1: return "arr[(" + intExpr(0) + ") & 31]";
    default: return "arr2[(" + intExpr(0) + ") & 15]";
    }
  }

  std::string intLeaf() {
    unsigned N = pick(12);
    if (N < 3)
      return std::to_string(pick(100));
    if (N < 6)
      return "g" + std::to_string(pick(5));
    if (N < 8 && !Locals.empty())
      return Locals[pick(static_cast<unsigned>(Locals.size()))];
    if (N < 9 && !ActiveIvs.empty())
      return ActiveIvs[pick(static_cast<unsigned>(ActiveIvs.size()))];
    if (N < 10 && HaveLocs)
      return "loc" + std::to_string(pick(2));
    if (N < 11)
      return "arr[(" + intExpr(0) + ") & 31]";
    return "arr2[(" + intExpr(0) + ") & 15]";
  }

  std::string intExpr(unsigned D) {
    if (D == 0 || chance(35))
      return intLeaf();
    switch (pick(12)) {
    case 0: return "(" + intExpr(D - 1) + " + " + intExpr(D - 1) + ")";
    case 1: return "(" + intExpr(D - 1) + " - " + intExpr(D - 1) + ")";
    case 2: return "(" + intExpr(D - 1) + " * " + intExpr(D - 1) + ")";
    case 3: return "(" + intExpr(D - 1) + " & " + intExpr(D - 1) + ")";
    case 4: return "(" + intExpr(D - 1) + " | " + intExpr(D - 1) + ")";
    case 5: return "(" + intExpr(D - 1) + " ^ " + intExpr(D - 1) + ")";
    case 6: // denominator always in [1,8]
      return "(" + intExpr(D - 1) + " / ((" + intExpr(D - 1) + " & 7) + 1))";
    case 7:
      return "(" + intExpr(D - 1) + " % ((" + intExpr(D - 1) + " & 7) + 1))";
    case 8: return "(-" + intLeaf() + ")";
    case 9: return "(" + cond(D - 1) + " ? " + intLeaf() + " : " +
                   intLeaf() + ")";
    case 10:
      if (Opts.UsePointers)
        return "read_ptr(&" + addressable() + ")";
      return intLeaf();
    default:
      if (CallBudget > 0 && MaxCallee > 0) {
        --CallBudget;
        unsigned H = pick(MaxCallee);
        return "h" + std::to_string(H) + "(" + intExpr(D - 1) + ", " +
               intLeaf() + ")";
      }
      return intLeaf();
    }
  }

  std::string cond(unsigned D) {
    static const char *Cmp[] = {" < ", " <= ", " > ", " >= ", " == ", " != "};
    std::string C = "(" + intExpr(D) + Cmp[pick(6)] + intExpr(D) + ")";
    if (D > 0 && chance(20))
      return "(" + C + (chance(50) ? " && " : " || ") + cond(0) + ")";
    return C;
  }

  std::string floatExpr(unsigned D) {
    auto Leaf = [&]() -> std::string {
      switch (pick(5)) {
      case 0: return "fg" + std::to_string(pick(2));
      case 1: return "farr[(" + intExpr(0) + ") & 15]";
      case 2: return "1.5";
      case 3: return "0.25";
      default: return "(float)(" + intLeaf() + ")";
      }
    };
    if (D == 0 || chance(40))
      return Leaf();
    static const char *Op[] = {" + ", " - ", " * "};
    return "(" + floatExpr(D - 1) + Op[pick(3)] + floatExpr(D - 1) + ")";
  }

  // -- Statements ------------------------------------------------------------

  void stmt(unsigned LoopDepth, bool InsideFor) {
    unsigned N = pick(24);
    indent();
    if (N < 5) {
      Out << intTarget() << " = " << intExpr(2) << ";\n";
    } else if (N < 8) {
      static const char *Op[] = {" += ", " -= ", " *= "};
      Out << intTarget() << Op[pick(3)] << intExpr(1) << ";\n";
    } else if (N < 10) {
      Out << intTarget() << (chance(50) ? "++" : "--") << ";\n";
    } else if (N < 12 && Opts.UseFloats) {
      if (chance(50))
        Out << "fg" << pick(2) << " = " << floatExpr(2) << ";\n";
      else
        Out << "farr[(" << intExpr(1) << ") & 15] = " << floatExpr(1)
            << ";\n";
    } else if (N < 14 && Opts.UsePointers) {
      Out << "store_add(&" << addressable() << ", " << intExpr(1) << ");\n";
    } else if (N < 16 && MaxCallee > 0 && CallBudget > 0) {
      --CallBudget;
      Out << intTarget() << " = h" << pick(MaxCallee) << "(" << intExpr(1)
          << ", " << intExpr(1) << ");\n";
    } else if (N < 17) {
      Out << "print_int(" << intExpr(2) << ");\n";
      indent();
      Out << "print_char(10);\n";
    } else if (N < 20) {
      Out << "if " << cond(1) << " {\n";
      ++Depth;
      block(LoopDepth, InsideFor, 1 + pick(2));
      --Depth;
      indent();
      if (chance(40)) {
        Out << "} else {\n";
        ++Depth;
        block(LoopDepth, InsideFor, 1 + pick(2));
        --Depth;
        indent();
      }
      Out << "}\n";
    } else if (N < 21 && LoopDepth > 0) {
      Out << "if " << cond(0) << " break;\n";
    } else if (N < 22 && InsideFor) {
      Out << "if " << cond(0) << " continue;\n";
    } else if (LoopDepth < Opts.MaxLoopDepth) {
      loop(LoopDepth);
    } else {
      Out << intTarget() << " = " << intExpr(1) << ";\n";
    }
  }

  void block(unsigned LoopDepth, bool InsideFor, unsigned Stmts) {
    for (unsigned S = 0; S != Stmts; ++S)
      stmt(LoopDepth, InsideFor);
  }

  void loop(unsigned LoopDepth) {
    std::string IV = "i" + std::to_string(LoopDepth);
    unsigned Bound = 2 + pick(5); // 2..6 iterations
    unsigned Kind = pick(4);      // bias toward for-loops
    unsigned Stmts = 1 + pick(Opts.MaxStmtsPerBlock);
    ActiveIvs.push_back(IV);
    if (Kind < 2) {
      Out << "for (" << IV << " = 0; " << IV << " < " << Bound << "; " << IV
          << "++) {\n";
      ++Depth;
      block(LoopDepth + 1, /*InsideFor=*/true, Stmts);
      --Depth;
      indent();
      Out << "}\n";
    } else if (Kind == 2) {
      // Manual increment: `continue` would skip it, so bodies of while
      // loops never get one (stmt() checks InsideFor).
      Out << IV << " = 0;\n";
      indent();
      Out << "while (" << IV << " < " << Bound << ") {\n";
      ++Depth;
      block(LoopDepth + 1, /*InsideFor=*/false, Stmts);
      indent();
      Out << IV << "++;\n";
      --Depth;
      indent();
      Out << "}\n";
    } else {
      Out << IV << " = 0;\n";
      indent();
      Out << "do {\n";
      ++Depth;
      block(LoopDepth + 1, /*InsideFor=*/false, Stmts);
      indent();
      Out << IV << "++;\n";
      --Depth;
      indent();
      Out << "} while (" << IV << " < " << Bound << ");\n";
    }
    ActiveIvs.pop_back();
  }

  // -- Top-level structure ---------------------------------------------------

  void emitGlobals() {
    Out << "/* rpfuzz generated program */\n";
    Out << "int g0; int g1; int g2; int g3; int g4;\n";
    Out << "int ginit = " << (1 + pick(50)) << ";\n";
    Out << "int arr[32];\n";
    Out << "int arr2[16];\n";
    if (Opts.UseFloats) {
      Out << "float fg0; float fg1;\n";
      Out << "float farr[16];\n";
    } else {
      // Keep names valid so expression pools need no special cases.
      Out << "int fg0; int fg1;\n";
      Out << "int farr[16];\n";
    }
    Out << "\n";
  }

  void emitFixedHelpers() {
    if (Opts.UsePointers) {
      Out << "void store_add(int *p, int v) { *p = *p + v; }\n";
      Out << "int read_ptr(int *p) { return *p; }\n\n";
    }
  }

  void emitHelper(unsigned K) {
    MaxCallee = K; // may call h0..h(K-1)
    CallBudget = 2;
    Locals.clear();
    Locals.push_back("a");
    Locals.push_back("b");
    Out << "int h" << K << "(int a, int b) {\n";
    Depth = 1;
    indent();
    Out << "int t;\n";
    indent();
    Out << "t = " << intExpr(1) << ";\n";
    Locals.push_back("t");
    unsigned Stmts = 1 + pick(3);
    if (chance(50)) {
      // One small private loop; bound <= 4 keeps the call tree's dynamic
      // cost polynomial even when every helper calls two lower ones.
      indent();
      Out << "int j;\n";
      indent();
      unsigned Bound = 2 + pick(3);
      Out << "for (j = 0; j < " << Bound << "; j++) {\n";
      ++Depth;
      ActiveIvs.push_back("j");
      for (unsigned S = 0; S != Stmts; ++S)
        helperStmt();
      ActiveIvs.pop_back();
      --Depth;
      indent();
      Out << "}\n";
    } else {
      for (unsigned S = 0; S != Stmts; ++S)
        helperStmt();
    }
    indent();
    Out << "return " << intExpr(2) << ";\n";
    Out << "}\n\n";
    Locals.clear();
  }

  void helperStmt() {
    indent();
    switch (pick(6)) {
    case 0: Out << "t = " << intExpr(2) << ";\n"; break;
    case 1: Out << "g" << pick(5) << " = " << intExpr(2) << ";\n"; break;
    case 2: Out << "g" << pick(5) << " += t;\n"; break;
    case 3: Out << "arr[(" << intExpr(1) << ") & 31] = t;\n"; break;
    case 4:
      if (Opts.UsePointers) {
        Out << "store_add(&g" << pick(5) << ", t);\n";
        break;
      }
      [[fallthrough]];
    default:
      if (MaxCallee > 0 && CallBudget > 0) {
        --CallBudget;
        Out << "t = t + h" << pick(MaxCallee) << "(t, " << intLeaf()
            << ");\n";
      } else {
        Out << "t = t + " << intLeaf() << ";\n";
      }
      break;
    }
  }

  void emitMain() {
    MaxCallee = Opts.NumHelpers;
    CallBudget = 8;
    Locals.clear();
    HaveLocs = true;
    Out << "int main() {\n";
    Depth = 1;
    for (unsigned V = 0; V != 4; ++V) {
      indent();
      Out << "int v" << V << "; v" << V << " = " << pick(50) << ";\n";
      Locals.push_back("v" + std::to_string(V));
    }
    for (unsigned L = 0; L != 2; ++L) {
      indent();
      Out << "int loc" << L << "; loc" << L << " = " << pick(20) << ";\n";
    }
    for (unsigned I = 0; I <= Opts.MaxLoopDepth; ++I) {
      indent();
      Out << "int i" << I << ";\n";
    }
    Out << "\n";
    unsigned TopStmts = 3 + pick(4);
    block(/*LoopDepth=*/0, /*InsideFor=*/false, TopStmts);
    Out << "\n";
    indent();
    Out << "print_int(g0 + g1 * 3 + g2 * 5 + g3 * 7 + g4 * 11 + ginit\n";
    indent();
    Out << "    + v0 + v1 + v2 + v3 + loc0 + loc1\n";
    indent();
    Out << "    + arr[3] + arr[17] + arr2[5] + (int)(fg0 + fg1 + farr[2]"
        << (Opts.UseFloats ? " + 0.5" : "") << "));\n";
    indent();
    Out << "print_char(10);\n";
    indent();
    Out << "return (g0 + v0 + loc0 + arr[1]) & 255;\n";
    Out << "}\n";
  }

  std::mt19937_64 Rng;
  GeneratorOptions Opts;
  std::ostringstream Out;
  unsigned Depth = 0;
  bool HaveLocs = false;   ///< loc0/loc1 (main's address-taken locals) in scope
  unsigned MaxCallee = 0;  ///< callable helpers are h0..h(MaxCallee-1)
  int CallBudget = 0;      ///< remaining calls in the current function
  std::vector<std::string> Locals;
  std::vector<std::string> ActiveIvs;
};

} // namespace

std::string rpcc::generateProgram(uint64_t Seed,
                                  const GeneratorOptions &Opts) {
  return Generator(Seed, Opts).run();
}
