//===- fuzz/DifferentialOracle.cpp ----------------------------------------===//

#include "fuzz/DifferentialOracle.h"

#include "driver/CompileCache.h"
#include "obs/Remark.h"

#include <sstream>

using namespace rpcc;

std::string FuzzConfig::name() const {
  std::ostringstream OS;
  OS << (Analysis == AnalysisKind::ModRef ? "modref" : "pointer");
  OS << (Promo ? "/promo" : "/nopromo");
  if (PtrPromo)
    OS << "+ptr";
  OS << (Opts ? "/opts" : "/noopts");
  OS << (Classic ? "/classic" : "/modern");
  OS << "/r" << Regs;
  return OS.str();
}

CompilerConfig FuzzConfig::toCompilerConfig() const {
  CompilerConfig Cfg;
  Cfg.Analysis = Analysis;
  Cfg.ScalarPromotion = Promo;
  Cfg.PointerPromotion = PtrPromo;
  Cfg.EnableOpts = Opts;
  Cfg.ClassicAllocator = Classic;
  Cfg.NumRegisters = Regs;
  return Cfg;
}

std::vector<FuzzConfig> rpcc::fullMatrix() {
  std::vector<FuzzConfig> M;
  for (AnalysisKind A : {AnalysisKind::ModRef, AnalysisKind::PointsTo})
    for (bool Promo : {false, true})
      for (bool Opts : {false, true})
        for (bool Classic : {false, true})
          for (unsigned Regs : {8u, 16u, 32u})
            M.push_back({A, Promo, false, Opts, Classic, Regs});
  // Section 3.3 pointer promotion rides on top of scalar promotion.
  for (AnalysisKind A : {AnalysisKind::ModRef, AnalysisKind::PointsTo})
    for (unsigned Regs : {8u, 32u})
      M.push_back({A, true, true, true, false, Regs});
  return M;
}

std::vector<FuzzConfig> rpcc::quickMatrix() {
  return {
      {AnalysisKind::ModRef, false, false, false, false, 16},
      {AnalysisKind::ModRef, true, false, true, false, 16},
      {AnalysisKind::PointsTo, false, false, true, false, 16},
      {AnalysisKind::PointsTo, true, false, true, false, 16},
      {AnalysisKind::PointsTo, true, true, true, false, 32},
      {AnalysisKind::ModRef, true, false, true, true, 8},
  };
}

std::vector<std::pair<size_t, size_t>>
rpcc::promotionPairs(const std::vector<FuzzConfig> &Matrix) {
  std::vector<std::pair<size_t, size_t>> Pairs;
  for (size_t I = 0; I != Matrix.size(); ++I) {
    const FuzzConfig &A = Matrix[I];
    if (A.Promo || A.Regs < 16)
      continue;
    for (size_t J = 0; J != Matrix.size(); ++J) {
      const FuzzConfig &B = Matrix[J];
      if (B.Promo && !B.PtrPromo && A.Analysis == B.Analysis &&
          A.PtrPromo == B.PtrPromo && A.Opts == B.Opts &&
          A.Classic == B.Classic && A.Regs == B.Regs) {
        Pairs.emplace_back(I, J);
        break;
      }
    }
  }
  return Pairs;
}

OracleResult rpcc::checkProgram(const std::string &Source,
                                const std::vector<FuzzConfig> &Matrix,
                                const InterpOptions &IO,
                                CompileCache *Cache) {
  OracleResult R;
  R.Loads.assign(Matrix.size(), 0);
  bool HaveBase = false;
  int64_t BaseExit = 0;
  std::string BaseOutput, BaseName;
  // Scalar promotion decides before register allocation and the scalar
  // optimizations run, from the alias analysis alone — so the promote-pass
  // remark stream must be byte-identical across every promoting cell with
  // the same analysis, whatever the register count, allocator vintage, or
  // optimization level. A difference means promotion consulted state it
  // must not depend on. Index 0 = modref, 1 = points-to.
  std::string PromoRemarks[2], PromoRemarksName[2];
  bool HavePromoRemarks[2] = {false, false};
  for (size_t I = 0; I != Matrix.size(); ++I) {
    const FuzzConfig &C = Matrix[I];
    RemarkEngine Re;
    CompilerConfig Cfg = C.toCompilerConfig();
    if (C.Promo) {
      Cfg.Remarks = &Re;
      Cfg.ResidualAudit = false;
    }
    ExecResult E;
    {
      CompileOutput Out = Cache ? Cache->compile("program", Source, Cfg)
                                : compileProgram(Source, Cfg);
      if (!Out.Ok) {
        E.Error = Out.Errors;
      } else {
        E = interpret(*Out.M, IO);
      }
    }
    if (!E.Ok) {
      R.Ok = false;
      R.FailingConfig = C.name();
      R.Message = "compile or runtime failure: " + E.Error;
      return R;
    }
    if (C.Promo) {
      size_t AI = C.Analysis == AnalysisKind::ModRef ? 0 : 1;
      std::string Stream = Re.toText("promote");
      if (!HavePromoRemarks[AI]) {
        HavePromoRemarks[AI] = true;
        PromoRemarks[AI] = std::move(Stream);
        PromoRemarksName[AI] = C.name();
      } else if (Stream != PromoRemarks[AI]) {
        R.Ok = false;
        R.FailingConfig = C.name();
        R.Message = "promotion remark stream differs from " +
                    PromoRemarksName[AI] +
                    " (promotion decisions must not depend on register "
                    "count, allocator, or optimization level)";
        return R;
      }
    }
    R.Loads[I] = E.Counters.Loads;
    if (!HaveBase) {
      HaveBase = true;
      BaseExit = E.ExitCode;
      BaseOutput = E.Output;
      BaseName = C.name();
      continue;
    }
    if (E.ExitCode != BaseExit) {
      R.Ok = false;
      R.FailingConfig = C.name();
      std::ostringstream OS;
      OS << "exit code " << E.ExitCode << " differs from " << BaseExit
         << " under " << BaseName;
      R.Message = OS.str();
      return R;
    }
    if (E.Output != BaseOutput) {
      R.Ok = false;
      R.FailingConfig = C.name();
      size_t N = 0;
      while (N < E.Output.size() && N < BaseOutput.size() &&
             E.Output[N] == BaseOutput[N])
        ++N;
      std::ostringstream OS;
      OS << "stdout diverges from " << BaseName << " at byte " << N << " ("
         << E.Output.size() << " vs " << BaseOutput.size() << " bytes)";
      R.Message = OS.str();
      return R;
    }
  }
  return R;
}
