//===- fuzz/FaultInjector.cpp ---------------------------------------------===//

#include "fuzz/FaultInjector.h"

#include <random>
#include <sstream>
#include <vector>

using namespace rpcc;

namespace {

/// Every (function, block, instruction) coordinate in the module.
struct Site {
  FuncId F;
  BlockId B;
  size_t I;
};

std::vector<Site> allSites(Module &M) {
  std::vector<Site> Sites;
  for (FuncId F = 0; F != M.numFunctions(); ++F) {
    Function *Fn = M.function(F);
    if (Fn->isBuiltin())
      continue;
    for (auto &B : Fn->blocks())
      for (size_t I = 0; I != B->size(); ++I)
        Sites.push_back({F, B->id(), I});
  }
  return Sites;
}

} // namespace

unsigned rpcc::widenAnalysis(Module &M, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  auto Pick = [&](size_t N) { return static_cast<size_t>(Rng() % N); };

  // Tags that already appear in some tag set are known-addressable, so
  // adding them anywhere keeps the "only addressed tags in pointer tag
  // sets" invariant intact.
  TagSet Pool;
  for (FuncId F = 0; F != M.numFunctions(); ++F) {
    Function *Fn = M.function(F);
    if (Fn->isBuiltin())
      continue;
    for (auto &B : Fn->blocks())
      for (auto &IP : B->insts()) {
        Pool.unionWith(IP->Tags);
        Pool.unionWith(IP->Mods);
        Pool.unionWith(IP->Refs);
      }
  }
  if (Pool.empty())
    return 0;
  std::vector<TagId> PoolV(Pool.begin(), Pool.end());

  unsigned Widened = 0;
  auto Grow = [&](TagSet &S) {
    unsigned Extra = 1 + static_cast<unsigned>(Rng() % 3);
    bool Grew = false;
    for (unsigned K = 0; K != Extra; ++K)
      Grew |= S.insert(PoolV[Pick(PoolV.size())]);
    Widened += Grew;
  };

  for (FuncId F = 0; F != M.numFunctions(); ++F) {
    Function *Fn = M.function(F);
    if (Fn->isBuiltin())
      continue;
    for (auto &B : Fn->blocks())
      for (auto &IP : B->insts()) {
        Instruction &I = *IP;
        if (isPointerMemOp(I.Op) && !I.Tags.empty() && Rng() % 4 == 0)
          Grow(I.Tags);
        // MOD/REF summaries may grow even from empty: an empty summary
        // means "no effects", and claiming more effects is conservative.
        if (I.Op == Opcode::Call && Rng() % 4 == 0) {
          Grow(I.Mods);
          Grow(I.Refs);
        }
      }
  }
  return Widened;
}

bool rpcc::corruptModule(Module &M, uint64_t Seed, std::string &Desc) {
  std::mt19937_64 Rng(Seed);
  std::vector<Site> Sites = allSites(M);
  if (Sites.empty())
    return false;

  TagId BadTag = static_cast<TagId>(M.tags().size()) + 3;
  FuncId BadFunc = static_cast<FuncId>(M.numFunctions()) + 3;

  // Module-level targets for the tag-table mutations (kinds 10 and 11):
  // Local/Spill owners and Func targets that can be made to dangle.
  std::vector<TagId> OwnedTags;
  for (const Tag &T : M.tags())
    if (T.Kind == TagKind::Local || T.Kind == TagKind::Spill ||
        T.Kind == TagKind::Func)
      OwnedTags.push_back(T.Id);

  // Try random (site, mutation) pairs until one applies; with twelve
  // mutation kinds over every instruction this terminates almost
  // immediately.
  for (unsigned Attempt = 0; Attempt != 256; ++Attempt) {
    unsigned Kind = static_cast<unsigned>(Rng() % 12);

    // The last two kinds corrupt module-level tables instead of an
    // instruction; they exercise the verifier's tag-table checks and the
    // printer's tolerance for dangling owner/global references.
    if (Kind == 10) {
      if (OwnedTags.empty())
        continue;
      Tag &T = M.tags().tag(OwnedTags[Rng() % OwnedTags.size()]);
      std::ostringstream OS;
      OS << "tag table: ";
      if (T.Kind == TagKind::Func) {
        T.Fn = BadFunc;
        OS << "dangling function on func tag '" << T.Name << "'";
      } else {
        T.Owner = BadFunc;
        OS << "dangling owner on tag '" << T.Name << "'";
      }
      Desc = OS.str();
      return true;
    }
    if (Kind == 11) {
      if (M.globals().empty())
        continue;
      size_t G = Rng() % M.globals().size();
      M.globals()[G].Tag = BadTag;
      std::ostringstream OS;
      OS << "globals: dangling tag on initializer #" << G;
      Desc = OS.str();
      return true;
    }

    const Site &S = Sites[Rng() % Sites.size()];
    Function *Fn = M.function(S.F);
    BasicBlock *B = Fn->block(S.B);
    Instruction &I = *B->insts()[S.I];
    std::ostringstream OS;
    OS << Fn->name() << " B" << S.B << " inst " << S.I << ": ";

    switch (Kind) {
    case 0: // dangling tag in a pointer tag list
      if (!isPointerMemOp(I.Op))
        continue;
      I.Tags.insert(BadTag);
      OS << "dangling tag in tag list";
      break;
    case 1: // dangling tag in a call MOD/REF summary
      if (!isCallOp(I.Op))
        continue;
      (Rng() % 2 ? I.Mods : I.Refs).insert(BadTag);
      OS << "dangling tag in MOD/REF summary";
      break;
    case 2: // dangling scalar tag
      if (I.Op != Opcode::ScalarLoad && I.Op != Opcode::ScalarStore &&
          I.Op != Opcode::LoadAddr)
        continue;
      I.Tag = BadTag;
      OS << "dangling scalar tag";
      break;
    case 3: // out-of-range operand register
      if (I.Ops.empty())
        continue;
      I.Ops[Rng() % I.Ops.size()] =
          static_cast<Reg>(Fn->numRegs()) + 7;
      OS << "out-of-range operand register";
      break;
    case 4: // missing operand
      if (I.Ops.empty() || isCallOp(I.Op) || I.Op == Opcode::Ret)
        continue; // calls/rets have variable arity
      I.Ops.pop_back();
      OS << "dropped operand";
      break;
    case 5: // branch into the void
      if (I.Op != Opcode::Br && I.Op != Opcode::Jmp)
        continue;
      I.Target0 = static_cast<BlockId>(Fn->numBlocks()) + 2;
      OS << "branch target out of range";
      break;
    case 6: // computation without a destination
      if (!I.hasResult() || isCallOp(I.Op))
        continue; // a call may legally return nothing
      I.Result = NoReg;
      OS << "stripped result register";
      break;
    case 7: // store pretending to define a register
      if (I.Op != Opcode::Store && I.Op != Opcode::ScalarStore)
        continue;
      if (Fn->numRegs() == 0)
        continue;
      I.Result = 0;
      OS << "result register on a store";
      break;
    case 8: // strip the terminator
      if (B->size() < 2 || S.I + 1 != B->size() || !isTerminator(I.Op))
        continue;
      OS << "removed terminator";
      B->insts().pop_back();
      break;
    default: // call to nowhere
      if (I.Op != Opcode::Call)
        continue;
      I.Callee = BadFunc;
      OS << "dangling callee";
      break;
    }
    Desc = OS.str();
    return true;
  }
  return false;
}
