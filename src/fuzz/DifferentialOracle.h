//===- fuzz/DifferentialOracle.h - Cross-config behavior oracle -*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle: one program compiled under every pipeline
/// configuration must behave identically. Alias analysis choice, promotion,
/// scalar optimization, allocator vintage, and register count may change
/// the operation counts — never the exit code or the bytes printed. Any
/// cell that disagrees with the first (weakest) configuration is a compiler
/// bug by definition.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_FUZZ_DIFFERENTIALORACLE_H
#define RPCC_FUZZ_DIFFERENTIALORACLE_H

#include "driver/Compiler.h"

#include <string>
#include <utility>
#include <vector>

namespace rpcc {

class CompileCache;

/// One cell of the differential matrix.
struct FuzzConfig {
  AnalysisKind Analysis = AnalysisKind::ModRef;
  bool Promo = false;
  bool PtrPromo = false;
  bool Opts = false;
  bool Classic = false;
  unsigned Regs = 16;

  std::string name() const;
  CompilerConfig toCompilerConfig() const;
};

/// Full cross product {modref,pointer} x {-,+promo} x {-,+opts} x
/// {modern,classic alloc} x regs {8,16,32}, plus pointer-promotion cells.
std::vector<FuzzConfig> fullMatrix();

/// A small spanning subset for smoke tests: both analyses, promotion on and
/// off, optimization on and off, one classic-allocator and one low-register
/// cell.
std::vector<FuzzConfig> quickMatrix();

struct OracleResult {
  bool Ok = true;
  std::string FailingConfig; ///< name of the first divergent/broken cell
  std::string Message;       ///< what went wrong, human-readable
  /// Informational: dynamic loads per cell, index-aligned with the matrix
  /// (0 for cells that failed). Count deltas are advisory only — promotion
  /// can legally add loads (zero-trip landing pads) or spills (low R).
  std::vector<uint64_t> Loads;
};

/// Compiles and runs \p Source under every cell of \p Matrix and compares
/// observable behavior (exit code, stdout) against cell 0. When \p Cache is
/// non-null the cells share its compiled prefix (the matrix re-compiles one
/// program dozens of times, so this is the fuzzer's hot path); the verdict
/// is identical with or without a cache.
OracleResult checkProgram(const std::string &Source,
                          const std::vector<FuzzConfig> &Matrix,
                          const InterpOptions &IO = {},
                          CompileCache *Cache = nullptr);

/// (without, with) index pairs of cells identical except scalar promotion.
/// Per program the load delta can go either way (landing-pad loads, spill
/// code), but summed over a corpus promotion must not add loads — that is
/// the paper's whole point. Callers accumulate OracleResult::Loads over
/// many seeds and compare the aggregates at these pairs. Cells with fewer
/// than 16 registers are excluded: there promotion raises pressure enough
/// that spill loads legitimately outweigh the savings (the paper's §3.4
/// "water" anecdote), so no aggregate invariant holds.
std::vector<std::pair<size_t, size_t>>
promotionPairs(const std::vector<FuzzConfig> &Matrix);

} // namespace rpcc

#endif // RPCC_FUZZ_DIFFERENTIALORACLE_H
