//===- fuzz/Campaign.cpp --------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "driver/CompileCache.h"
#include "driver/PassTiming.h"
#include "frontend/Lowering.h"
#include "fuzz/DifferentialOracle.h"
#include "fuzz/FaultInjector.h"
#include "fuzz/ProgramGenerator.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace rpcc;

namespace {

InterpOptions fuzzInterpOptions(InterpEngine Engine, bool UseCaches) {
  InterpOptions IO;
  IO.Engine = Engine;
  // Generated programs are terminating by construction; a run that needs
  // more than this is a generator bug worth flagging loudly.
  IO.MaxSteps = uint64_t(1) << 26;
  // --no-compile-cache turns off the jit's native-code cache along with the
  // frontend cache, so campaigns can A/B a fully-from-scratch pipeline.
  IO.JitCodeCache = UseCaches;
  return IO;
}

/// Everything one seed produced, computed on any worker thread and reported
/// later, in seed order, on the campaign thread.
struct SeedOutcome {
  bool Ok = true;
  bool DiffOk = false;
  std::string Why;
  std::string Src;            ///< kept only for failing seeds
  std::vector<uint64_t> Loads; ///< per-cell dynamic loads when DiffOk
  /// How the seed's sandboxed child ended; Ok for in-protocol verdicts and
  /// for inline (non-sandboxed) checking.
  SandboxStatus Child = SandboxStatus::Ok;
};

/// diff oracle: every matrix cell must agree on behavior. Records per-cell
/// load counts for the corpus-level promotion check.
bool checkDiff(const std::string &Src, const std::vector<FuzzConfig> &Matrix,
               InterpEngine Engine, CompileCache *Cache, SeedOutcome &Out) {
  OracleResult R = checkProgram(Src, Matrix,
                              fuzzInterpOptions(Engine, Cache != nullptr), Cache);
  if (R.Ok) {
    Out.DiffOk = true;
    Out.Loads = std::move(R.Loads);
    return true;
  }
  Out.Why = "[diff] " + R.FailingConfig + ": " + R.Message;
  return false;
}

/// widen oracle: behavior must survive conservative analysis degradation.
/// The widening hook runs in the config-dependent suffix, so both runs can
/// fork one cached points-to prefix: the reference suffix sees the pristine
/// analysis, the widened suffix degrades its own private fork.
bool checkWiden(uint64_t Seed, const std::string &Src, InterpEngine Engine,
                CompileCache *Cache, std::string &Why) {
  auto Run = [&](const CompilerConfig &Cfg) {
    if (!Cache)
      return compileAndRun(Src, Cfg, fuzzInterpOptions(Engine, false));
    CompileOutput Out = Cache->compile("program", Src, Cfg);
    if (!Out.Ok) {
      ExecResult R;
      R.Error = Out.Errors;
      return R;
    }
    return interpret(*Out.M, fuzzInterpOptions(Engine, true));
  };
  CompilerConfig Base;
  Base.Analysis = AnalysisKind::PointsTo;
  ExecResult Ref = Run(Base);
  if (!Ref.Ok) {
    Why = "[widen] reference run failed: " + Ref.Error;
    return false;
  }
  CompilerConfig Widened = Base;
  Widened.PostAnalysisHook = [Seed](Module &M) { widenAnalysis(M, Seed); };
  ExecResult Got = Run(Widened);
  if (!Got.Ok) {
    Why = "[widen] widened run failed: " + Got.Error;
    return false;
  }
  if (Got.ExitCode != Ref.ExitCode || Got.Output != Ref.Output) {
    std::ostringstream OS;
    OS << "[widen] behavior changed: exit " << Got.ExitCode << " vs "
       << Ref.ExitCode << ", stdout " << Got.Output.size() << " vs "
       << Ref.Output.size() << " bytes";
    Why = OS.str();
    return false;
  }
  return true;
}

/// corrupt oracle: the verifier must reject, with a diagnostic, without
/// crashing -- and the printer must render the broken IL safely too.
bool checkCorrupt(uint64_t Seed, const std::string &Src, std::string &Why) {
  Module M;
  std::string Err;
  if (!compileToIL(Src, M, Err)) {
    Why = "[corrupt] generated program failed to lower: " + Err;
    return false;
  }
  std::string PreErr;
  if (!verifyModule(M, PreErr)) {
    Why = "[corrupt] lowered IL failed verification before corruption:\n" +
          PreErr;
    return false;
  }
  std::string Desc;
  if (!corruptModule(M, Seed, Desc)) {
    Why = "[corrupt] no corruption site found";
    return false;
  }
  (void)printModule(M); // must not crash on invalid IL
  std::string PostErr;
  VerifyOptions VO;
  VO.CheckDefBeforeUse = true;
  if (verifyModule(M, PostErr, VO)) {
    Why = "[corrupt] verifier accepted corrupted IL (" + Desc + ")";
    return false;
  }
  if (PostErr.empty()) {
    Why = "[corrupt] verifier rejected without a diagnostic (" + Desc + ")";
    return false;
  }
  return true;
}

/// Runs every enabled oracle for one seed. Self-contained: the seed's
/// compiles share a private prefix cache (diff and widen compile the same
/// program under many configs), and every compile forks its own module, so
/// no shared state crosses seeds or threads.
SeedOutcome checkSeed(uint64_t Seed, const CampaignOptions &Opts,
                      const std::vector<FuzzConfig> &Matrix) {
  double T0 = Opts.Trace ? timingNowMs() : 0;
  SeedOutcome Out;
  std::string Src = generateProgram(Seed);
  std::unique_ptr<CompileCache> Cache;
  if (Opts.UseCompileCache)
    Cache = std::make_unique<CompileCache>();
  std::string Why;
  bool Ok =
      (!Opts.DoDiff ||
       checkDiff(Src, Matrix, Opts.Engine, Cache.get(), Out)) &&
      (!Opts.DoWiden ||
       checkWiden(Seed, Src, Opts.Engine, Cache.get(), Why)) &&
      (!Opts.DoCorrupt || checkCorrupt(Seed, Src, Why));
  if (!Ok) {
    Out.Ok = false;
    if (Out.Why.empty())
      Out.Why = Why;
    Out.Src = std::move(Src);
  }
  if (Opts.Trace)
    Opts.Trace->addSpan("seed " + std::to_string(Seed), "seed", T0,
                        timingNowMs() - T0,
                        {{"verdict", Out.Ok ? "ok" : "fail"}});
  return Out;
}

// -- Sandbox plumbing --------------------------------------------------------

/// Flattens a SeedOutcome onto the sandbox result pipe. Child is parent-side
/// by construction (the child cannot classify its own death).
std::string encodeOutcome(const SeedOutcome &Out) {
  PayloadWriter W;
  W.u8(Out.Ok);
  W.u8(Out.DiffOk);
  W.str(Out.Why);
  W.str(Out.Src);
  W.u64(Out.Loads.size());
  for (uint64_t L : Out.Loads)
    W.u64(L);
  return W.take();
}

bool decodeOutcome(const std::string &Payload, SeedOutcome &Out) {
  PayloadReader R(Payload);
  Out.Ok = R.u8() != 0;
  Out.DiffOk = R.u8() != 0;
  Out.Why = R.str();
  Out.Src = R.str();
  uint64_t N = R.u64();
  if (N > Payload.size() / 8) // corrupt length: cannot possibly fit
    return false;
  Out.Loads.assign(N, 0);
  for (uint64_t &L : Out.Loads)
    L = R.u64();
  return R.complete();
}

/// The deterministic sabotage schedule for --inject-worker-faults: seeds
/// ≡ 3 (mod 20) crash, ≡ 9 hang, ≡ 15 OOM. Spread so a smoke campaign of a
/// few dozen seeds exercises every classification at least once.
WorkerFault injectedFault(const CampaignOptions &Opts, uint64_t Seed) {
  if (!Opts.InjectWorkerFaults)
    return WorkerFault::None;
  switch (Seed % 20) {
  case 3:
    return WorkerFault::Crash;
  case 9:
    return WorkerFault::Hang;
  case 15:
    return WorkerFault::Oom;
  default:
    return WorkerFault::None;
  }
}

/// Seed dispatcher: inline checking when the sandbox is off (byte-for-byte
/// the historic path), otherwise the oracles run in a forked child. A dead
/// child becomes a failing outcome with a "[sandbox]" diagnostic; its
/// program is regenerated parent-side (generation is deterministic) for the
/// log and the reproducer dir.
SeedOutcome checkSeedMaybeSandboxed(uint64_t Seed, const CampaignOptions &Opts,
                                    const std::vector<FuzzConfig> &Matrix) {
  if (!Opts.Sandbox)
    return checkSeed(Seed, Opts, Matrix);

  JobOptions JOpts;
  JOpts.Name = "seed-" + std::to_string(Seed);
  JOpts.Sandbox = true;
  JOpts.Limits = Opts.Limits;
  JOpts.Inject = injectedFault(Opts, Seed);
  JOpts.Log = Opts.Log;
  JOpts.Trace = Opts.Trace;

  // The child must not touch the shared trace collector: another worker may
  // hold its mutex at fork time. The parent-side runJob emits the span.
  CampaignOptions ChildOpts = Opts;
  ChildOpts.Trace = nullptr;
  SandboxResult R = runJob(
      [&](std::string &Payload) {
        Payload = encodeOutcome(checkSeed(Seed, ChildOpts, Matrix));
        return true;
      },
      JOpts);

  SeedOutcome Out;
  if (R.ok()) {
    if (decodeOutcome(R.Payload, Out))
      return Out;
    Out = SeedOutcome();
    Out.Child = SandboxStatus::InternalError;
    Out.Why = "[sandbox] malformed result payload";
  } else {
    Out.Child = R.Status;
    Out.Why = "[sandbox] " + R.Error;
  }
  Out.Ok = false;
  Out.Src = generateProgram(Seed);
  return Out;
}

void emit(CampaignResult &R, std::FILE *Live, const std::string &Text) {
  R.Log += Text;
  if (Live)
    std::fputs(Text.c_str(), Live);
}

/// Writes a failing seed's program to `<Dir>/seed-<N>.c`, creating the
/// directory on first use. Filesystem trouble is reported in the log, never
/// fatal — the reproducer is a convenience, the FAIL line is the record.
void writeReproducer(CampaignResult &R, std::FILE *Live,
                     const std::string &Dir, uint64_t Seed,
                     const std::string &Src) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::string Path = Dir + "/seed-" + std::to_string(Seed) + ".c";
  std::ofstream Out(Path);
  Out << Src;
  Out.close();
  emit(R, Live,
       Out.good() ? "rpfuzz: reproducer " + Path + "\n"
                  : "rpfuzz: failed to write reproducer " + Path + "\n");
}

/// Fail classes mirror the FAIL-line prefixes the oracle/sandbox attach to
/// SeedOutcome::Why, so the counters partition exactly like the log.
Counter &fuzzFailCounter(const std::string &Why) {
  auto &R = MetricsRegistry::global();
  auto Make = [&R](const char *Class) {
    return R.counter("fuzz.fails", {{"class", Class}},
                     MetricStability::Stable, "ops",
                     "Failing seeds per failure class.");
  };
  static Counter Diff = Make("diff");
  static Counter Widen = Make("widen");
  static Counter Corrupt = Make("corrupt");
  static Counter Sandbox = Make("sandbox");
  static Counter Other = Make("other");
  if (Why.rfind("[diff] ", 0) == 0)
    return Diff;
  if (Why.rfind("[widen] ", 0) == 0)
    return Widen;
  if (Why.rfind("[corrupt] ", 0) == 0)
    return Corrupt;
  if (Why.rfind("[sandbox] ", 0) == 0)
    return Sandbox;
  return Other;
}

} // namespace

CampaignResult rpcc::runCampaign(const CampaignOptions &Opts,
                                 std::FILE *Live) {
  Counter SeedsDone = MetricsRegistry::global().counter(
      "fuzz.seeds", {}, MetricStability::Stable, "ops",
      "Seeds fully checked (heartbeat rates derive seeds/sec from this).");
  std::vector<FuzzConfig> Matrix = Opts.Quick ? quickMatrix() : fullMatrix();
  CampaignResult R;
  std::vector<uint64_t> LoadTotals(Matrix.size(), 0);
  uint64_t Printed = 0;

  // Seeds are checked in blocks (parallel, any order) and reported in seed
  // order, so the log is byte-identical for any Jobs. Serial runs use a
  // block of one, preserving the old check-then-report streaming cadence.
  uint64_t BlockSize = Opts.Jobs <= 1 ? 1 : uint64_t(Opts.Jobs) * 8;
  std::vector<SeedOutcome> Block;
  for (uint64_t Base = 0; Base < Opts.Runs; Base += BlockSize) {
    uint64_t N = std::min(BlockSize, Opts.Runs - Base);
    Block.assign(N, SeedOutcome());
    parallelFor(Opts.Jobs, N, [&](size_t I) {
      Block[I] = checkSeedMaybeSandboxed(Opts.Seed0 + Base + I, Opts, Matrix);
    });

    for (uint64_t I = 0; I != N; ++I) {
      uint64_t K = Base + I;
      uint64_t Seed = Opts.Seed0 + K;
      SeedOutcome &Out = Block[I];
      SeedsDone.inc();
      if (Out.DiffOk)
        for (size_t Cell = 0; Cell != Out.Loads.size(); ++Cell)
          LoadTotals[Cell] += Out.Loads[Cell];
      if (!Out.Ok) {
        fuzzFailCounter(Out.Why).inc();
        ++R.Failures;
        R.Crashed += Out.Child == SandboxStatus::Crash;
        R.OomKilled += Out.Child == SandboxStatus::Oom;
        R.TimedOut += Out.Child == SandboxStatus::Timeout;
        std::ostringstream OS;
        OS << "FAIL seed=" << Seed << " " << Out.Why << "\n";
        if (Printed < Opts.MaxPrintedPrograms) {
          ++Printed;
          OS << "---- failing program (seed " << Seed << ") ----\n"
             << Out.Src << "---- end program ----\n";
        }
        emit(R, Live, OS.str());
        if (!Opts.ReproducerDir.empty())
          writeReproducer(R, Live, Opts.ReproducerDir, Seed, Out.Src);
      }
      if (Opts.ProgressInterval && (K + 1) % Opts.ProgressInterval == 0) {
        std::ostringstream OS;
        OS << "rpfuzz: " << (K + 1) << "/" << Opts.Runs << " seeds, "
           << R.Failures << " failure(s)\n";
        emit(R, Live, OS.str());
      }
    }
  }

  // Corpus-level count sanity: a single program may legally load more with
  // promotion (landing pads, spills), but across the whole corpus promotion
  // must not add loads under otherwise-identical configuration.
  if (Opts.DoDiff && R.Failures == 0) {
    for (auto [Without, With] : promotionPairs(Matrix)) {
      if (LoadTotals[With] > LoadTotals[Without]) {
        ++R.Failures;
        std::ostringstream OS;
        OS << "FAIL corpus load counts: " << Matrix[With].name() << " ran "
           << LoadTotals[With] << " loads vs " << LoadTotals[Without]
           << " under " << Matrix[Without].name() << "\n";
        emit(R, Live, OS.str());
      }
    }
  }
  std::ostringstream OS;
  if (R.Failures) {
    OS << "rpfuzz: " << R.Failures << " failing seed(s)";
    // Abnormal children get their own accounting: the whole point of the
    // sandbox is that these are distinguishable from wrong-answer seeds.
    if (R.Crashed || R.OomKilled || R.TimedOut)
      OS << " (" << R.Crashed << " crashed, " << R.OomKilled << " oom, "
         << R.TimedOut << " timed out)";
    OS << "\n";
  } else {
    OS << "rpfuzz: " << Opts.Runs << " seeds clean\n";
  }
  emit(R, Live, OS.str());
  return R;
}
