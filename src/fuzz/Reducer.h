//===- fuzz/Reducer.h - Line-granular delta debugging -----------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic ddmin over source lines: repeatedly delete chunks (and chunk
/// complements) while a caller-supplied predicate still reproduces the
/// failure. The predicate owns the definition of "still failing" — usually
/// "the differential oracle still reports a divergence" — so reduction can
/// never drift to a different bug unless the predicate lets it.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_FUZZ_REDUCER_H
#define RPCC_FUZZ_REDUCER_H

#include <functional>
#include <string>

namespace rpcc {

/// Returns true when \p Source still exhibits the failure being chased.
using FailurePredicate = std::function<bool(const std::string &)>;

struct ReduceStats {
  unsigned PredicateRuns = 0;
  size_t InitialLines = 0;
  size_t FinalLines = 0;
};

/// Shrinks \p Source to a 1-minimal set of lines under \p StillFails.
/// \p Source must already satisfy the predicate; if it does not, it is
/// returned unchanged.
std::string reduceProgram(const std::string &Source,
                          const FailurePredicate &StillFails,
                          ReduceStats *Stats = nullptr);

} // namespace rpcc

#endif // RPCC_FUZZ_REDUCER_H
