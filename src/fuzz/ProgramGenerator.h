//===- fuzz/ProgramGenerator.h - Seeded MiniC program generator -*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random-but-deterministic MiniC programs for differential
/// fuzzing. The same seed always yields byte-identical source (mt19937_64
/// is fully specified by the standard), and every generated program is safe
/// by construction:
///
///   - all loops count a dedicated induction variable from 0 to a small
///     constant bound; the body never assigns the active induction variable,
///     `continue` appears only inside `for` (whose step always runs);
///   - every array index is masked to the array's power-of-two size;
///   - every division/remainder uses a denominator of the form
///     `((e & 7) + 1)`, which is always in [1,8], so neither divide-by-zero
///     nor INT64_MIN/-1 can fault;
///   - pointers only come from `&` of live objects and are dereferenced
///     inside helper callees, never stored past their lifetime;
///   - recursion is impossible: helper k calls only helpers j < k.
///
/// Programs exercise the promoter's whole input space: global scalars
/// (promotion candidates), address-taken locals and globals (ambiguity),
/// arrays, pointer-writing helpers (MOD/REF), floats, nested loops with
/// break/continue, and calls threaded through a DAG.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_FUZZ_PROGRAMGENERATOR_H
#define RPCC_FUZZ_PROGRAMGENERATOR_H

#include <cstdint>
#include <string>

namespace rpcc {

struct GeneratorOptions {
  unsigned MaxLoopDepth = 3;   ///< deepest loop nesting in main
  unsigned NumHelpers = 4;     ///< generated helper functions (call DAG)
  unsigned MaxStmtsPerBlock = 5;
  bool UseFloats = true;
  bool UsePointers = true;
};

/// Produces one complete MiniC translation unit. Deterministic in \p Seed.
std::string generateProgram(uint64_t Seed, const GeneratorOptions &Opts = {});

} // namespace rpcc

#endif // RPCC_FUZZ_PROGRAMGENERATOR_H
