//===- obs/Remark.cpp -----------------------------------------------------===//

#include "obs/Remark.h"

#include "ir/Module.h"
#include "support/Json.h"

#include <sstream>

using namespace rpcc;

void RemarkEngine::emit(const char *Pass, RemarkKind K, RemarkReason R,
                        const std::string &Function,
                        const std::string &LoopHeader, unsigned LoopDepth,
                        const std::string &Tag, std::string Message) {
  Remark Rm;
  Rm.Pass = Pass;
  Rm.Kind = K;
  Rm.Reason = R;
  Rm.Function = Function;
  Rm.LoopHeader = LoopHeader;
  Rm.LoopDepth = LoopDepth;
  Rm.Tag = Tag;
  Rm.Message = std::move(Message);
  Remarks.push_back(std::move(Rm));
}

size_t RemarkEngine::count(RemarkKind K, const std::string &PassFilter) const {
  size_t N = 0;
  for (const Remark &R : Remarks)
    if (R.Kind == K && (PassFilter.empty() || R.Pass == PassFilter))
      ++N;
  return N;
}

const char *RemarkEngine::kindName(RemarkKind K) {
  switch (K) {
  case RemarkKind::Promoted:
    return "promoted";
  case RemarkKind::Missed:
    return "missed";
  case RemarkKind::Hoisted:
    return "hoisted";
  case RemarkKind::Residual:
    return "residual";
  case RemarkKind::Note:
    return "note";
  }
  return "unknown";
}

const char *RemarkEngine::reasonCode(RemarkReason R) {
  switch (R) {
  case RemarkReason::None:
    return "none";
  case RemarkReason::CallModRef:
    return "call-modref";
  case RemarkReason::AliasedPointerOp:
    return "aliased-pointer-op";
  case RemarkReason::RegPressure:
    return "reg-pressure";
  case RemarkReason::NoLandingPad:
    return "no-landing-pad";
  case RemarkReason::LoopVariantAddress:
    return "loop-variant-address";
  case RemarkReason::GroupConflict:
    return "group-conflict";
  case RemarkReason::MultiTagPointer:
    return "multi-tag-pointer";
  case RemarkReason::TagModified:
    return "tag-modified";
  case RemarkReason::MultipleDefs:
    return "multiple-defs";
  case RemarkReason::SpillSlot:
    return "spill-slot";
  case RemarkReason::PromotionOff:
    return "promotion-off";
  case RemarkReason::LatePromotable:
    return "late-promotable";
  case RemarkReason::HeapOrUnknown:
    return "heap-or-unknown";
  }
  return "unknown";
}

std::string rpcc::formatRemark(const Remark &R) {
  std::ostringstream OS;
  OS << "[" << R.Pass << "] " << RemarkEngine::kindName(R.Kind);
  if (R.Reason != RemarkReason::None)
    OS << "(" << RemarkEngine::reasonCode(R.Reason) << ")";
  OS << " func=" << R.Function;
  if (!R.LoopHeader.empty())
    OS << " loop=" << R.LoopHeader << " depth=" << R.LoopDepth;
  if (!R.Tag.empty())
    OS << " tag=" << R.Tag;
  if (!R.Message.empty())
    OS << ": " << R.Message;
  return OS.str();
}

std::string RemarkEngine::toText(const std::string &PassFilter) const {
  std::string Out;
  for (const Remark &R : Remarks) {
    if (!PassFilter.empty() && R.Pass != PassFilter)
      continue;
    Out += formatRemark(R);
    Out += '\n';
  }
  return Out;
}

std::string RemarkEngine::toJsonLines(
    const std::vector<std::pair<std::string, std::string>> &Extra) const {
  std::ostringstream OS;
  for (const Remark &R : Remarks) {
    OS << "{";
    for (const auto &[K, V] : Extra)
      OS << "\"" << jsonEscape(K) << "\":\"" << jsonEscape(V) << "\",";
    OS << "\"pass\":\"" << jsonEscape(R.Pass) << "\"";
    OS << ",\"kind\":\"" << kindName(R.Kind) << "\"";
    OS << ",\"reason\":\"" << reasonCode(R.Reason) << "\"";
    OS << ",\"function\":\"" << jsonEscape(R.Function) << "\"";
    OS << ",\"loop\":\"" << jsonEscape(R.LoopHeader) << "\"";
    OS << ",\"depth\":" << R.LoopDepth;
    OS << ",\"tag\":\"" << jsonEscape(R.Tag) << "\"";
    OS << ",\"message\":\"" << jsonEscape(R.Message) << "\"";
    OS << "}\n";
  }
  return OS.str();
}

std::string rpcc::tagDisplayName(const Module &M, uint32_t TagId) {
  const Tag &T = M.tags().tag(TagId);
  if ((T.Kind == TagKind::Local || T.Kind == TagKind::Spill) &&
      T.Owner != NoFunc)
    return T.Name + "@" + M.function(T.Owner)->name();
  return T.Name;
}
