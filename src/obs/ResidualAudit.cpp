//===- obs/ResidualAudit.cpp ----------------------------------------------===//

#include "obs/ResidualAudit.h"

#include "analysis/Cfg.h"
#include "analysis/LoopInfo.h"
#include "ir/Module.h"
#include "obs/Remark.h"
#include "obs/TagProfile.h"
#include "promote/ScalarPromotion.h"

#include <map>
#include <string>

using namespace rpcc;

namespace {

/// Aggregated static counts of one (loop, tag, reason) class.
struct OpCount {
  unsigned Loads = 0;
  unsigned Stores = 0;
};

/// Classifies one residual scalar op on tag \p T inside loop \p L.
RemarkReason classifyScalar(const Module &M, TagId T,
                            const LoopPromotionInfo &Info,
                            const ResidualAuditOptions &Opts) {
  if (M.tags().tag(T).Kind == TagKind::Spill)
    return RemarkReason::SpillSlot;
  if (!Opts.ScalarPromotion)
    return RemarkReason::PromotionOff;
  if (Info.AmbiguousCall.contains(T))
    return RemarkReason::CallModRef;
  if (Info.AmbiguousPtr.contains(T))
    return RemarkReason::AliasedPointerOp;
  // Promotable on the final IL. Either the budget trimmed it, or later
  // passes (SCCP removing a blocking call, promotion's own landing-pad
  // loads for an inner loop) exposed it after the promoter already ran.
  return Opts.PromotionBudget ? RemarkReason::RegPressure
                              : RemarkReason::LatePromotable;
}

/// Classifies one residual pointer op tag inside a loop.
RemarkReason classifyPointer(const Module &M, TagId T, size_t NumTags,
                             bool BaseVariant,
                             const ResidualAuditOptions &Opts) {
  if (T == NoTag || M.tags().tag(T).Kind == TagKind::Heap)
    return RemarkReason::HeapOrUnknown;
  if (BaseVariant)
    return RemarkReason::LoopVariantAddress;
  if (NumTags > 1)
    return RemarkReason::MultiTagPointer;
  if (!Opts.PointerPromotion)
    return RemarkReason::PromotionOff;
  return RemarkReason::GroupConflict;
}

const char *reasonDetail(RemarkReason R) {
  switch (R) {
  case RemarkReason::SpillSlot:
    return "register-allocator spill traffic";
  case RemarkReason::PromotionOff:
    return "the promoting pass is disabled in this configuration";
  case RemarkReason::CallModRef:
    return "a call in the loop may mod/ref the tag";
  case RemarkReason::AliasedPointerOp:
    return "a pointer-based op in the loop may touch the tag";
  case RemarkReason::RegPressure:
    return "candidate exceeded the per-loop promotion budget";
  case RemarkReason::LatePromotable:
    return "promotable on the final IL; exposed after the promoter ran";
  case RemarkReason::HeapOrUnknown:
    return "heap object or unresolvable address";
  case RemarkReason::LoopVariantAddress:
    return "base address is recomputed inside the loop";
  case RemarkReason::MultiTagPointer:
    return "pointer may reference several objects";
  case RemarkReason::GroupConflict:
    return "an overlapping access disqualified the reference group";
  default:
    return "";
  }
}

void auditFunction(Module &M, Function &F, const ResidualAuditOptions &Opts,
                   RemarkEngine &Re) {
  recomputeCfg(F);
  LoopInfo LI(F);
  if (LI.numLoops() == 0)
    return;
  std::vector<LoopPromotionInfo> Infos = analyzeScalarPromotion(M, F, LI);

  // Registers defined per loop, for the loop-variant-address test. Physical
  // registers after allocation make this conservative, which is the right
  // direction for an audit.
  std::vector<std::vector<bool>> DefInLoop(LI.numLoops());
  for (size_t L = 0; L != LI.numLoops(); ++L) {
    DefInLoop[L].assign(F.numRegs(), false);
    for (BlockId B : LI.loop(L).Blocks)
      for (const auto &IP : F.block(B)->insts())
        if (IP->hasResult())
          DefInLoop[L][IP->Result] = true;
  }

  // (loop, tag, reason) -> static counts, ordered for deterministic output.
  std::map<std::tuple<int, TagId, int>, OpCount> Agg;
  auto Bump = [&](int L, TagId T, RemarkReason R, bool IsStore) {
    OpCount &C = Agg[{L, T, static_cast<int>(R)}];
    if (IsStore)
      ++C.Stores;
    else
      ++C.Loads;
  };

  for (const auto &BP : F.blocks()) {
    int L = LI.innermostLoop(BP->id());
    if (L < 0)
      continue;
    for (const auto &IP : BP->insts()) {
      const Instruction &I = *IP;
      switch (I.Op) {
      case Opcode::ScalarLoad:
      case Opcode::ScalarStore:
        Bump(L, I.Tag,
             classifyScalar(M, I.Tag, Infos[static_cast<size_t>(L)], Opts),
             I.Op == Opcode::ScalarStore);
        break;
      case Opcode::Load:
      case Opcode::ConstLoad:
      case Opcode::Store: {
        bool BaseVariant =
            !I.Ops.empty() && DefInLoop[static_cast<size_t>(L)][I.Ops[0]];
        bool IsStore = I.Op == Opcode::Store;
        if (I.Tags.empty()) {
          Bump(L, NoTag, RemarkReason::HeapOrUnknown, IsStore);
          break;
        }
        // One record per tag so whichever object the address resolves to
        // at run time joins a remark.
        for (TagId T : I.Tags)
          Bump(L, T, classifyPointer(M, T, I.Tags.size(), BaseVariant, Opts),
               IsStore);
        break;
      }
      default:
        break;
      }
    }
  }

  for (const auto &[Key, C] : Agg) {
    auto [L, T, RInt] = Key;
    RemarkReason R = static_cast<RemarkReason>(RInt);
    const Loop &Lp = LI.loop(static_cast<size_t>(L));
    std::string TagName =
        T == NoTag ? std::string("(heap)") : tagDisplayName(M, T);
    Re.emit("residual", RemarkKind::Residual, R, F.name(),
            loopDisplayName(F, Lp.Header), Lp.Depth, TagName,
            std::string(reasonDetail(R)) + " (" + std::to_string(C.Loads) +
                " load(s), " + std::to_string(C.Stores) + " store(s))");
  }
}

} // namespace

void rpcc::auditResidualMemOps(Module &M, const ResidualAuditOptions &Opts,
                               RemarkEngine &Re) {
  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    Function *F = M.function(static_cast<FuncId>(FI));
    if (F->isBuiltin() || F->numBlocks() == 0)
      continue;
    auditFunction(M, *F, Opts, Re);
  }
}
