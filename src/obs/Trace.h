//===- obs/Trace.h - Chrome trace-event JSON emitter ------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide span collector rendering the Chrome trace-event JSON
/// format (load the file in chrome://tracing or Perfetto). Spans cover
/// compile-pipeline passes (via the driver's Timed wrapper), suite cells,
/// and fuzz seeds; the track id is the ThreadPool worker that executed the
/// span, so the suite's parallel fan-out is visible as one lane per worker.
///
/// Timestamps and durations are wall-clock and therefore volatile; tooling
/// that compares traces across runs (the rpjson validator's canon command)
/// strips ts/dur/tid and sorts, leaving the deterministic skeleton of names,
/// categories and args.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_OBS_TRACE_H
#define RPCC_OBS_TRACE_H

#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rpcc {

/// One complete ("ph":"X") span.
struct TraceEvent {
  std::string Name;
  std::string Cat;  ///< "pass", "cell", "seed", "phase"
  double TsMs = 0;  ///< start, relative to collector construction
  double DurMs = 0;
  int Tid = 0;      ///< ThreadPool worker id (0 = main thread)
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Thread-safe collector shared by every job of a run.
class TraceCollector {
public:
  TraceCollector();

  /// Records one span. \p TsMs is an absolute timingNowMs() timestamp; the
  /// collector rebases it onto its own origin. The track id is taken from
  /// the calling thread's ThreadPool worker id.
  void addSpan(const std::string &Name, const std::string &Cat, double TsMs,
               double DurMs,
               std::vector<std::pair<std::string, std::string>> Args = {});

  size_t size() const;

  /// The full trace as one Chrome trace-event JSON object. Events are
  /// ordered by (start time, track, name).
  std::string toJson() const;

private:
  mutable std::mutex Mu;
  std::vector<TraceEvent> Events;
  double OriginMs;
};

} // namespace rpcc

#endif // RPCC_OBS_TRACE_H
