//===- obs/TagProfile.cpp -------------------------------------------------===//

#include "obs/TagProfile.h"

#include "analysis/Cfg.h"
#include "analysis/LoopInfo.h"
#include "ir/Module.h"
#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <sstream>

using namespace rpcc;

std::string rpcc::loopDisplayName(const Function &F, uint32_t HeaderBlock) {
  return F.block(HeaderBlock)->name() + "#" + std::to_string(HeaderBlock);
}

ProfileMeta ProfileMeta::build(Module &M) {
  ProfileMeta Meta;
  Meta.LoopOfBlock.resize(M.numFunctions());
  for (FuncId FI = 0; FI != M.numFunctions(); ++FI) {
    Function &F = *M.function(FI);
    if (F.isBuiltin() || F.numBlocks() == 0)
      continue;
    recomputeCfg(F);
    LoopInfo LI(F);
    // Preorder guarantees a parent is appended before its children, so
    // parent links can be resolved while appending.
    std::vector<int> GlobalIdx(LI.numLoops(), -1);
    for (int L : LI.preorder()) {
      const Loop &Lp = LI.loop(static_cast<size_t>(L));
      ProfileLoop PL;
      PL.Func = FI;
      PL.Header = loopDisplayName(F, Lp.Header);
      PL.Depth = Lp.Depth;
      PL.Parent = Lp.Parent < 0 ? -1 : GlobalIdx[Lp.Parent];
      GlobalIdx[L] = static_cast<int>(Meta.Loops.size());
      Meta.Loops.push_back(std::move(PL));
    }
    std::vector<int32_t> &Inner = Meta.LoopOfBlock[FI];
    Inner.resize(F.numBlocks(), -1);
    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      int L = LI.innermostLoop(B);
      Inner[B] = L < 0 ? -1 : GlobalIdx[L];
    }
  }
  return Meta;
}

uint64_t TagProfile::sumLoads() const {
  uint64_t N = 0;
  for (const TagLoopCount &C : Counts)
    N += C.Loads;
  return N;
}

uint64_t TagProfile::sumStores() const {
  uint64_t N = 0;
  for (const TagLoopCount &C : Counts)
    N += C.Stores;
  return N;
}

void DenseProfileSink::init(const ProfileMeta &Meta, size_t NumFunctions,
                            size_t NumTags) {
  Stride = static_cast<uint32_t>(NumTags + 1);
  Pairs.clear();
  PairOfBlock.assign(NumFunctions, {});
  NoLoopPair.assign(NumFunctions, 0);
  static const std::vector<int32_t> NoBlocks;
  for (FuncId F = 0; F != NumFunctions; ++F) {
    const std::vector<int32_t> &LoopMap =
        F < Meta.LoopOfBlock.size() ? Meta.LoopOfBlock[F] : NoBlocks;
    // Rows are created in (no-loop first, then block order) so the table is
    // deterministic; every function gets its (F, -1) fallback row even when
    // all of its blocks sit inside loops, because the interpreter falls back
    // to it for blocks past the snapshot.
    NoLoopPair[F] = static_cast<uint32_t>(Pairs.size());
    Pairs.push_back({F, -1});
    std::vector<uint32_t> &PB = PairOfBlock[F];
    PB.resize(LoopMap.size());
    for (size_t B = 0; B != LoopMap.size(); ++B) {
      int32_t L = LoopMap[B];
      if (L < 0) {
        PB[B] = NoLoopPair[F];
        continue;
      }
      uint32_t Row = ~0u;
      for (size_t P = NoLoopPair[F] + 1; P != Pairs.size(); ++P)
        if (Pairs[P].Loop == L) {
          Row = static_cast<uint32_t>(P);
          break;
        }
      if (Row == ~0u) {
        Row = static_cast<uint32_t>(Pairs.size());
        Pairs.push_back({F, L});
      }
      PB[B] = Row;
    }
  }
  Loads.assign(Pairs.size() * size_t(Stride), 0);
  Stores.assign(Pairs.size() * size_t(Stride), 0);
}

void TagProfile::finalize(const DenseProfileSink &Sink) {
  Counts.clear();
  for (uint32_t P = 0; P != Sink.pairs().size(); ++P) {
    const DenseProfileSink::Pair &Row = Sink.pairs()[P];
    for (uint32_t T = 0; T != Sink.stride(); ++T) {
      size_t S = size_t(P) * Sink.stride() + T;
      uint64_t L = Sink.loads(S), St = Sink.stores(S);
      if (!L && !St)
        continue;
      TagLoopCount C;
      C.Func = Row.Func;
      C.Loop = Row.Loop;
      C.Tag = T == 0 ? NoTag : static_cast<TagId>(T - 1);
      C.Loads = L;
      C.Stores = St;
      Counts.push_back(C);
    }
  }
  std::sort(Counts.begin(), Counts.end(),
            [](const TagLoopCount &A, const TagLoopCount &B) {
              if (A.Func != B.Func)
                return A.Func < B.Func;
              if (A.Loop != B.Loop)
                return A.Loop < B.Loop;
              return A.Tag < B.Tag;
            });
}

namespace {

const char *tagKindName(TagKind K) {
  switch (K) {
  case TagKind::Global:
    return "global";
  case TagKind::Local:
    return "local";
  case TagKind::Heap:
    return "heap";
  case TagKind::Func:
    return "func";
  case TagKind::Spill:
    return "spill";
  }
  return "unknown";
}

std::string countTagName(const Module &M, const TagLoopCount &C) {
  return C.Tag == NoTag ? std::string("(heap)") : tagDisplayName(M, C.Tag);
}

std::string countLoopName(const ProfileMeta &Meta, const TagLoopCount &C) {
  return C.Loop < 0 ? std::string("-")
                    : Meta.Loops[static_cast<size_t>(C.Loop)].Header;
}

/// Counts ranked hottest-first with a deterministic tie-break on the
/// already-sorted (Func, Loop, Tag) order.
std::vector<size_t> rankByTraffic(const TagProfile &P) {
  std::vector<size_t> Order(P.Counts.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    uint64_t TA = P.Counts[A].Loads + P.Counts[A].Stores;
    uint64_t TB = P.Counts[B].Loads + P.Counts[B].Stores;
    return TA > TB;
  });
  return Order;
}

} // namespace

std::string rpcc::formatHotTagTable(const Module &M, const ProfileMeta &Meta,
                                    const TagProfile &P, size_t Limit) {
  TextTable T({"function", "loop", "tag", "kind", "loads", "stores", "total"});
  std::vector<size_t> Order = rankByTraffic(P);
  if (Limit && Order.size() > Limit)
    Order.resize(Limit);
  for (size_t I : Order) {
    const TagLoopCount &C = P.Counts[I];
    const char *Kind =
        C.Tag == NoTag ? "heap" : tagKindName(M.tags().tag(C.Tag).Kind);
    T.addRow({M.function(C.Func)->name(), countLoopName(Meta, C),
              countTagName(M, C), Kind, withCommas(C.Loads),
              withCommas(C.Stores), withCommas(C.Loads + C.Stores)});
  }
  return T.render();
}

std::string rpcc::profileToJson(const Module &M, const ProfileMeta &Meta,
                                const TagProfile &P) {
  std::ostringstream OS;
  OS << "{\"loops\":[";
  for (size_t I = 0; I != Meta.Loops.size(); ++I) {
    const ProfileLoop &L = Meta.Loops[I];
    if (I)
      OS << ",";
    OS << "{\"function\":\"" << jsonEscape(M.function(L.Func)->name())
       << "\",\"header\":\"" << jsonEscape(L.Header)
       << "\",\"depth\":" << L.Depth << ",\"parent\":" << L.Parent << "}";
  }
  OS << "],\"counts\":[";
  for (size_t I = 0; I != P.Counts.size(); ++I) {
    const TagLoopCount &C = P.Counts[I];
    const char *Kind =
        C.Tag == NoTag ? "heap" : tagKindName(M.tags().tag(C.Tag).Kind);
    if (I)
      OS << ",";
    OS << "{\"function\":\"" << jsonEscape(M.function(C.Func)->name())
       << "\",\"loop\":" << C.Loop << ",\"tag\":\""
       << jsonEscape(countTagName(M, C)) << "\",\"kind\":\"" << Kind
       << "\",\"loads\":" << C.Loads << ",\"stores\":" << C.Stores << "}";
  }
  OS << "],\"total_loads\":" << P.sumLoads()
     << ",\"total_stores\":" << P.sumStores() << "}\n";
  return OS.str();
}

std::vector<ExplainRow> rpcc::buildExplainReport(const Module &M,
                                                 const ProfileMeta &Meta,
                                                 const TagProfile &P,
                                                 const RemarkEngine &Re) {
  // Index missed/residual remarks by (function, tag display name). Reasons
  // keep first-emission order, deduplicated.
  struct ReasonList {
    std::vector<RemarkReason> Reasons;
  };
  std::unordered_map<std::string, ReasonList> ByKey;
  for (const Remark &R : Re.remarks()) {
    if (R.Kind != RemarkKind::Missed && R.Kind != RemarkKind::Residual)
      continue;
    if (R.Tag.empty())
      continue;
    ReasonList &RL = ByKey[R.Function + "\x1f" + R.Tag];
    if (std::find(RL.Reasons.begin(), RL.Reasons.end(), R.Reason) ==
        RL.Reasons.end())
      RL.Reasons.push_back(R.Reason);
  }

  std::vector<ExplainRow> Rows;
  for (size_t I : rankByTraffic(P)) {
    const TagLoopCount &C = P.Counts[I];
    if (C.Loop < 0 || C.Tag == NoTag)
      continue; // only residual *in-loop* traffic is left on the table
    const Tag &T = M.tags().tag(C.Tag);
    // Promotable-class storage per the paper: globals and address-taken
    // locals. Spill traffic and heap objects are outside the model.
    if (T.Kind != TagKind::Global && T.Kind != TagKind::Local)
      continue;
    ExplainRow Row;
    Row.Function = M.function(C.Func)->name();
    const ProfileLoop &L = Meta.Loops[static_cast<size_t>(C.Loop)];
    Row.Loop = L.Header;
    Row.Depth = L.Depth;
    Row.Tag = tagDisplayName(M, C.Tag);
    Row.Loads = C.Loads;
    Row.Stores = C.Stores;
    auto It = ByKey.find(Row.Function + "\x1f" + Row.Tag);
    if (It != ByKey.end()) {
      Row.Joined = true;
      Row.Reasons = It->second.Reasons;
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

std::string rpcc::formatExplainReport(const std::vector<ExplainRow> &Rows,
                                      size_t Limit) {
  TextTable T({"function", "loop", "tag", "loads", "stores", "why"});
  size_t N = Limit && Rows.size() > Limit ? Limit : Rows.size();
  for (size_t I = 0; I != N; ++I) {
    const ExplainRow &R = Rows[I];
    std::string Why;
    if (!R.Joined) {
      Why = "(unexplained)";
    } else {
      for (size_t J = 0; J != R.Reasons.size(); ++J) {
        if (J)
          Why += ",";
        Why += RemarkEngine::reasonCode(R.Reasons[J]);
      }
    }
    T.addRow({R.Function, R.Loop + "(d" + std::to_string(R.Depth) + ")", R.Tag,
              withCommas(R.Loads), withCommas(R.Stores), Why});
  }
  return T.render();
}
