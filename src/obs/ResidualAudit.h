//===- obs/ResidualAudit.h - Explain every surviving memory op --*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A post-pipeline reporting pass that classifies every memory operation
/// still inside a loop of the *final* IL and emits a residual remark with a
/// concrete reason code. In-pass remarks describe decisions at the point a
/// pass ran; later passes reshape the IL (inner-loop landing pads sit inside
/// outer loops, the allocator adds spill slots), so the audit is what
/// guarantees the invariant the tooling relies on: every residual in-loop
/// dynamic load or store joins a remark explaining it. It runs on the same
/// IL the interpreter executes, so its (function, loop, tag) keys line up
/// with the dynamic tag profile exactly.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_OBS_RESIDUALAUDIT_H
#define RPCC_OBS_RESIDUALAUDIT_H

namespace rpcc {

class Module;
class RemarkEngine;

struct ResidualAuditOptions {
  /// Whether scalar promotion ran in this configuration; when off, residual
  /// scalar ops are classified promotion-off rather than late-promotable.
  bool ScalarPromotion = true;
  /// Whether §3.3 pointer promotion ran.
  bool PointerPromotion = false;
  /// Whether a per-loop promotion budget was in force (MaxPromotedPerLoop).
  bool PromotionBudget = false;
};

/// Emits one residual remark (pass "residual") per (loop, tag, reason) with
/// static load/store counts, covering every in-loop memory operation of the
/// final IL. Recomputes CFG lists; call after the pipeline has finished.
void auditResidualMemOps(Module &M, const ResidualAuditOptions &Opts,
                         RemarkEngine &Re);

} // namespace rpcc

#endif // RPCC_OBS_RESIDUALAUDIT_H
