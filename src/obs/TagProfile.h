//===- obs/TagProfile.h - Dynamic per-tag/per-loop profiler -----*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attributes the interpreter's dynamic load/store counts to individual
/// memory tags and their enclosing loops — the measurement behind the
/// paper's §5 discussion of *which* locations stayed memory-resident and
/// why. OpCounters says promotion removed N operations; the tag profile
/// says which tags account for the residue, loop by loop, and — joined
/// against the missed-promotion remark stream (obs/Remark.h) — produces the
/// ranked "promotion left on the table" report: dynamic operations each
/// missed candidate still costs, with the blocking reason code attached.
///
/// The pipeline: ProfileMeta::build() snapshots the final IL's loop forest
/// (the same IL the interpreter executes, so attribution is exact); the
/// interpreter, when InterpOptions::Profile points at that meta, resolves
/// every executed memory operation to (function, innermost loop, tag) —
/// scalar ops by their tag field, pointer ops by decoding the runtime
/// address against the global/stack layout (heap stays a summary bucket).
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_OBS_TAGPROFILE_H
#define RPCC_OBS_TAGPROFILE_H

#include "ir/Tag.h"
#include "obs/Remark.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace rpcc {

class Module;
class Function;

/// Display name of a loop: header block name + "#" + header block id.
/// Shared by the profiler and the residual audit so their loop keys agree.
std::string loopDisplayName(const Function &F, uint32_t HeaderBlock);

/// One loop of the final IL, in a module-wide table.
struct ProfileLoop {
  FuncId Func = NoFunc;
  std::string Header; ///< loopDisplayName of the header
  unsigned Depth = 1; ///< 1 = outermost
  int Parent = -1;    ///< index into ProfileMeta::Loops, -1 for roots
};

/// Loop-structure snapshot of a compiled module, built once before
/// interpretation and consulted per executed memory operation.
struct ProfileMeta {
  std::vector<ProfileLoop> Loops;
  /// Per function, per block: index into Loops of the innermost enclosing
  /// loop, or -1. Indexed [FuncId][BlockId]; builtins get empty vectors.
  std::vector<std::vector<int32_t>> LoopOfBlock;

  /// Builds the snapshot from \p M's current IL. Recomputes CFG lists, so
  /// it needs a mutable module; call it after the pipeline, before
  /// interpret().
  static ProfileMeta build(Module &M);
};

/// Dynamic load/store counts of one (function, loop, tag) triple.
struct TagLoopCount {
  FuncId Func = NoFunc;
  int32_t Loop = -1; ///< index into ProfileMeta::Loops; -1 = not in a loop
  TagId Tag = NoTag; ///< NoTag = heap or unresolvable address
  uint64_t Loads = 0;
  uint64_t Stores = 0;
};

/// The interpreter's profile accumulator: dense load/store counters indexed
/// by a packed (function, loop) x (tag) slot id, so the hot path pays one
/// add instead of a hash lookup per memory operation. Slot 0 of every
/// (function, loop) row is the NoTag summary bucket (heap / unresolvable
/// addresses); tag T lives at slot T+1.
class DenseProfileSink {
public:
  /// One (function, innermost loop) row of the counter matrix.
  struct Pair {
    FuncId Func = NoFunc;
    int32_t Loop = -1; ///< index into ProfileMeta::Loops; -1 = not in a loop
  };

  /// Sizes the matrix for \p NumTags tags and builds the block -> row map
  /// from \p Meta (which must snapshot the same module being interpreted).
  void init(const ProfileMeta &Meta, size_t NumFunctions, size_t NumTags);

  /// Row of the innermost loop enclosing block \p B of function \p F.
  uint32_t pairOf(FuncId F, uint32_t B) const {
    const std::vector<uint32_t> &PB = PairOfBlock[F];
    return B < PB.size() ? PB[B] : NoLoopPair[F];
  }

  /// Counter slot of tag \p T within row \p Pair.
  size_t slot(uint32_t Pair, TagId T) const {
    return size_t(Pair) * Stride + (T == NoTag ? 0 : size_t(T) + 1);
  }

  uint32_t stride() const { return Stride; }
  const std::vector<Pair> &pairs() const { return Pairs; }

  void countLoad(size_t Slot) { ++Loads[Slot]; }
  void countStore(size_t Slot) { ++Stores[Slot]; }

  uint64_t loads(size_t Slot) const { return Loads[Slot]; }
  uint64_t stores(size_t Slot) const { return Stores[Slot]; }

private:
  uint32_t Stride = 1; ///< NumTags + 1 counters per row
  std::vector<Pair> Pairs;
  /// [FuncId][BlockId] -> row index; NoLoopPair is the fallback (F, -1) row.
  std::vector<std::vector<uint32_t>> PairOfBlock;
  std::vector<uint32_t> NoLoopPair;
  std::vector<uint64_t> Loads, Stores;
};

/// The dynamic tag profile of one execution.
struct TagProfile {
  /// Finalized counts, sorted by (Func, Loop, Tag) so the profile is
  /// deterministic and byte-identical across worker counts.
  std::vector<TagLoopCount> Counts;

  uint64_t sumLoads() const;
  uint64_t sumStores() const;

  /// Converts the interpreter's dense accumulator into sorted Counts,
  /// dropping all-zero slots.
  void finalize(const DenseProfileSink &Sink);
};

/// The hot-tag table: every profiled (function, loop, tag) triple ranked by
/// dynamic loads+stores. \p Limit > 0 keeps only the hottest rows.
std::string formatHotTagTable(const Module &M, const ProfileMeta &Meta,
                              const TagProfile &P, size_t Limit = 0);

/// The profile as one deterministic JSON object:
/// {"loops":[...],"counts":[...],"total_loads":..,"total_stores":..}.
std::string profileToJson(const Module &M, const ProfileMeta &Meta,
                          const TagProfile &P);

/// One row of the "promotion left on the table" report: a promotable-class
/// tag (global or address-taken local) with residual in-loop dynamic
/// traffic, joined against the remark stream's blocking reasons.
struct ExplainRow {
  std::string Function;
  std::string Loop;  ///< loop display name
  unsigned Depth = 1;
  std::string Tag;   ///< tagDisplayName
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  /// Blocking reason codes from missed/residual remarks for this
  /// (function, tag), in first-emission order; empty when Joined is false.
  std::vector<RemarkReason> Reasons;
  bool Joined = false; ///< a missed/residual remark explains this row
};

/// Joins in-loop residual counts of promotable-class tags against the
/// missed/residual remarks in \p Re. Rows come back ranked by dynamic
/// loads+stores (descending, deterministic tie-break).
std::vector<ExplainRow> buildExplainReport(const Module &M,
                                           const ProfileMeta &Meta,
                                           const TagProfile &P,
                                           const RemarkEngine &Re);

/// Renders the report as an aligned table. \p Limit > 0 keeps only the
/// hottest rows.
std::string formatExplainReport(const std::vector<ExplainRow> &Rows,
                                size_t Limit = 0);

} // namespace rpcc

#endif // RPCC_OBS_TAGPROFILE_H
