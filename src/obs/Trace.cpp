//===- obs/Trace.cpp ------------------------------------------------------===//

#include "obs/Trace.h"

#include "driver/PassTiming.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <sstream>

using namespace rpcc;

TraceCollector::TraceCollector() : OriginMs(timingNowMs()) {}

void TraceCollector::addSpan(
    const std::string &Name, const std::string &Cat, double TsMs,
    double DurMs, std::vector<std::pair<std::string, std::string>> Args) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsMs = TsMs - OriginMs;
  E.DurMs = DurMs;
  E.Tid = ThreadPool::currentWorker();
  E.Args = std::move(Args);
  std::lock_guard<std::mutex> L(Mu);
  Events.push_back(std::move(E));
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Events.size();
}

std::string TraceCollector::toJson() const {
  std::vector<TraceEvent> Sorted;
  {
    std::lock_guard<std::mutex> L(Mu);
    Sorted = Events;
  }
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.TsMs != B.TsMs)
                       return A.TsMs < B.TsMs;
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     return A.Name < B.Name;
                   });
  std::ostringstream OS;
  OS << "{\"traceEvents\":[";
  for (size_t I = 0; I != Sorted.size(); ++I) {
    const TraceEvent &E = Sorted[I];
    if (I)
      OS << ",\n";
    // Chrome expects microseconds.
    OS << "{\"name\":\"" << jsonEscape(E.Name) << "\",\"cat\":\""
       << jsonEscape(E.Cat) << "\",\"ph\":\"X\",\"ts\":"
       << fixed(E.TsMs * 1000.0, 1) << ",\"dur\":"
       << fixed(E.DurMs * 1000.0, 1) << ",\"pid\":1,\"tid\":" << E.Tid;
    if (!E.Args.empty()) {
      OS << ",\"args\":{";
      for (size_t A = 0; A != E.Args.size(); ++A) {
        if (A)
          OS << ",";
        OS << "\"" << jsonEscape(E.Args[A].first) << "\":\""
           << jsonEscape(E.Args[A].second) << "\"";
      }
      OS << "}";
    }
    OS << "}";
  }
  OS << "],\"displayTimeUnit\":\"ms\"}\n";
  return OS.str();
}
