//===- obs/Metrics.h - process-wide runtime metrics registry ----*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, gauges and log2-bucketed
/// histograms, instrumenting the compile cache, thread pool, job runner,
/// sandbox, JIT, interpreter engines and fuzz campaign. Design goals, in
/// order:
///
///  - **No allocation / no contention on the hot path.** Histograms have a
///    fixed 65-bucket log2 layout; every metric's storage is split into 16
///    cache-line-padded shards indexed by a per-thread id, so ThreadPool
///    workers increment disjoint cache lines with relaxed atomics. Shards
///    are summed only at snapshot time, under the registry mutex.
///
///  - **Fork safety.** `MetricsRegistry::global()` re-checks `getpid()` on
///    every call (pure atomics, no lock), so a sandboxed child that touches
///    metrics gets a fresh registry instead of deadlocking on a mutex the
///    parent held at fork. Handles cached in function-local statics before
///    the fork keep writing into the child's copy-on-write pages, which is
///    harmless: children report results through the sandbox pipe and leave
///    via `_exit`, never by exporting metrics.
///
///  - **Deterministic exposition.** Snapshots are name+label sorted.
///    `metricsToJson` renders the rpjson-validated `metrics` schema,
///    `metricsToProm` the Prometheus text exposition format, and
///    `metricsCanon` a stable projection (see MetricStability) used by the
///    determinism tests to compare runs across `--jobs`, mirroring rpjson's
///    timestamp-stripped trace canon.
///
/// Handles (`Counter`, `Gauge`, `Histogram`) are null-safe value types: a
/// default-constructed handle ignores every operation, so instrumentation
/// can be compiled in unconditionally.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_OBS_METRICS_H
#define RPCC_OBS_METRICS_H

#include <array>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace rpcc {

namespace detail {
struct Metric;
} // namespace detail

enum class MetricKind : uint8_t { Counter, Gauge, Histogram };

/// How much of a metric's value is deterministic across equivalent runs
/// (same inputs and flags, any `--jobs`). The canon projection keeps only
/// the deterministic part, so two runs can be compared byte-for-byte.
enum class MetricStability : uint8_t {
  /// Fully deterministic: counter/gauge value, histogram count+sum+buckets.
  Stable,
  /// Histogram whose *population* is deterministic but whose observed
  /// values are wall-time: canon keeps the count, drops sum/buckets.
  CountStable,
  /// Scheduling-dependent (queue depths, cache hit/miss splits decided by
  /// call_once races, per-worker utilization): omitted from canon.
  Volatile,
};

/// Fixed log2 histogram layout: bucket 0 holds v == 0, bucket k in [1,64]
/// holds v in [2^(k-1), 2^k), with bucket 64 additionally catching
/// everything from 2^63 up to UINT64_MAX.
constexpr int MetricHistogramBuckets = 65;

/// Number of per-thread shards per metric (power of two).
constexpr unsigned MetricShardCount = 16;

/// Bucket index for observation \p V under the layout above.
unsigned metricBucketFor(uint64_t V);

/// Label set, in emission order. Keep label values from a small stable
/// vocabulary (engine names, job statuses, worker ids) so exposition
/// output stays diffable.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter handle.
class Counter {
public:
  Counter() = default;
  void inc(uint64_t N = 1) const;

private:
  friend class MetricsRegistry;
  explicit Counter(detail::Metric *M) : M(M) {}
  detail::Metric *M = nullptr;
};

/// Up/down gauge handle. Only deltas are supported (they shard cleanly);
/// the snapshot value is the signed sum of all adds.
class Gauge {
public:
  Gauge() = default;
  void add(int64_t Delta) const;

private:
  friend class MetricsRegistry;
  explicit Gauge(detail::Metric *M) : M(M) {}
  detail::Metric *M = nullptr;
};

/// Log2 histogram handle.
class Histogram {
public:
  Histogram() = default;
  void observe(uint64_t V) const;

private:
  friend class MetricsRegistry;
  explicit Histogram(detail::Metric *M) : M(M) {}
  detail::Metric *M = nullptr;
};

/// One metric's merged value at snapshot time.
struct MetricSample {
  std::string Name;
  MetricLabels Labels;
  MetricKind Kind = MetricKind::Counter;
  MetricStability Stability = MetricStability::Volatile;
  std::string Unit;
  std::string Help;
  /// Counter/gauge value (counters are always >= 0).
  int64_t Value = 0;
  /// Histogram totals; Count == sum of Buckets.
  uint64_t Count = 0;
  uint64_t Sum = 0;
  std::array<uint64_t, MetricHistogramBuckets> Buckets{};
};

class MetricsRegistry {
public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The calling process's registry. Fork-aware: the first call after a
  /// fork installs a fresh registry for the child (the parent's is left
  /// untouched in copy-on-write memory). Lock-free so it is safe to call
  /// between fork and _exit.
  static MetricsRegistry &global();

  /// Find-or-create by (name, labels). Metric names use the charset
  /// [a-z0-9._]; the first registration's kind/stability/unit/help win.
  /// Returned handles stay valid for the registry's lifetime, including
  /// across reset().
  Counter counter(const std::string &Name, MetricLabels Labels,
                  MetricStability St, const char *Unit, const char *Help);
  Gauge gauge(const std::string &Name, MetricLabels Labels,
              MetricStability St, const char *Unit, const char *Help);
  Histogram histogram(const std::string &Name, MetricLabels Labels,
                      MetricStability St, const char *Unit, const char *Help);

  /// Merged view of every registered metric, sorted by (name, labels).
  std::vector<MetricSample> snapshot() const;

  /// Zeroes every value but keeps all registrations, so handles cached in
  /// function-local statics survive. Test-only by intent.
  void reset();

private:
  detail::Metric *findOrCreate(MetricKind Kind, const std::string &Name,
                               MetricLabels Labels, MetricStability St,
                               const char *Unit, const char *Help);

  /// Pid this registry belongs to, fixed at construction. global() compares
  /// it against getpid() to detect the first call after a fork; it is set
  /// before the registry pointer is published, so readers that acquire the
  /// pointer see a consistent owner.
  const long OwnerPid;

  mutable std::mutex Mu;
  /// Keyed by name + '\x1f' + k=v pairs; map order == exposition order.
  std::map<std::string, std::unique_ptr<detail::Metric>> Metrics;
};

/// Steady-clock microseconds, for latency observations. Same epoch as
/// timingNowMs (an arbitrary process-local origin).
uint64_t metricsNowUs();

const char *metricKindName(MetricKind K);
const char *metricStabilityName(MetricStability St);

/// Renders the `metrics` JSON schema: a top-level object with "schema",
/// "wall_ms" and a name-sorted "metrics" array. \p WallMs is the only
/// wall-time field; everything else comes from \p Samples.
std::string metricsToJson(const std::vector<MetricSample> &Samples,
                          double WallMs);

/// Renders the Prometheus text exposition format: families prefixed
/// `rpcc_` (dots become underscores) with # HELP / # TYPE headers;
/// histograms as cumulative _bucket{le="..."} series ending in le="+Inf",
/// plus _sum and _count.
std::string metricsToProm(const std::vector<MetricSample> &Samples);

/// The deterministic projection: one line per metric keeping only what its
/// MetricStability promises, sorted. Equal canon strings mean two runs did
/// the same work, regardless of scheduling.
std::string metricsCanon(const std::vector<MetricSample> &Samples);

/// Sum of the named counter/gauge over all its label sets; 0 if absent.
int64_t metricsValue(const std::vector<MetricSample> &Samples,
                     const std::string &Name);

/// Totals of the named histogram over all its label sets.
void metricsHistTotals(const std::vector<MetricSample> &Samples,
                       const std::string &Name, uint64_t &Count,
                       uint64_t &Sum);

/// Background thread that prints a one-line progress summary to stderr
/// every \p IntervalSecs (0 disables), computed from successive registry
/// snapshots: seeds/sec, suite cells done, cache hit rate and average busy
/// workers. stop() (also run by the destructor) quiesces the thread with a
/// condition variable and joins it, so callers can guarantee no heartbeat
/// line interleaves with final reports.
class Heartbeat {
public:
  Heartbeat(unsigned IntervalSecs, const char *Tool);
  ~Heartbeat();
  Heartbeat(const Heartbeat &) = delete;
  Heartbeat &operator=(const Heartbeat &) = delete;

  void stop();

private:
  void loop();
  std::string formatLine(const std::vector<MetricSample> &Samples,
                         double ElapsedSecs);

  unsigned Secs;
  std::string Tool;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Stopping = false;
  /// Rate state: previous snapshot's seed count, served-request count and
  /// pool busy-time.
  uint64_t LastSeeds = 0;
  uint64_t LastRequests = 0;
  uint64_t LastBusyUs = 0;
  std::thread Thr;
};

} // namespace rpcc

#endif // RPCC_OBS_METRICS_H
