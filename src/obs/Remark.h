//===- obs/Remark.h - Optimization remark records ---------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style optimization remarks for the promotion pipeline: a typed,
/// machine-readable record for every candidate a pass looked at — promoted,
/// or missed with the blocking reason. The paper's §5 discussion ("calls
/// inside loops were the dominant reason promotion failed", the water
/// anecdote) is exactly this stream, rendered after the fact; the remark
/// engine makes it a first-class output instead of a by-hand diff of IL
/// dumps.
///
/// Remarks are plain data (strings, not IR pointers), so they survive the
/// module they describe and can be compared across configurations: the
/// differential fuzzer asserts that promotion-decision remarks are
/// identical across register counts and worker counts.
///
/// One RemarkEngine belongs to one compile job; it is not thread-safe.
/// Parallel drivers give every job its own engine and merge the collected
/// streams in job order, which keeps all rendered output byte-identical to
/// a serial run.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_OBS_REMARK_H
#define RPCC_OBS_REMARK_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rpcc {

class Module;

/// What the pass did (or could not do) with the candidate.
enum class RemarkKind : uint8_t {
  Promoted, ///< the candidate was rewritten to a register
  Missed,   ///< the candidate was legal IL but blocked; Reason says why
  Hoisted,  ///< LICM moved the operation to the landing pad
  Residual, ///< post-pipeline audit: this memory op survived, Reason says why
  Note      ///< informational (PRE elimination counts, shape warnings)
};

/// Why a candidate stayed in memory. The catalog is documented in
/// docs/OBSERVABILITY.md; codes are stable strings for tooling.
enum class RemarkReason : uint8_t {
  None,               ///< not blocked (Promoted/Hoisted/Note remarks)
  CallModRef,         ///< a call in the loop may modify or reference the tag
  AliasedPointerOp,   ///< a pointer-based memory op in the loop may touch it
  RegPressure,        ///< dropped by the per-loop promotion budget
  NoLandingPad,       ///< loop shape unsupported (no unique landing pad)
  LoopVariantAddress, ///< pointer promotion: base address redefined in loop
  GroupConflict,      ///< pointer promotion: another access overlaps the group
  MultiTagPointer,    ///< pointer op with a multi-tag (ambiguous) tag set
  TagModified,        ///< LICM: something in the loop may store the tag
  MultipleDefs,       ///< LICM: result register has several definitions
  SpillSlot,          ///< residual op is allocator spill traffic
  PromotionOff,       ///< scalar promotion was disabled in this configuration
  LatePromotable,     ///< promotable on final IL but missed by phase ordering
  HeapOrUnknown       ///< heap object or unresolvable address
};

/// One remark. All location information is carried as names, not ids, so a
/// remark can be joined against the dynamic tag profile even though block
/// ids shift between the emitting pass and the final IL.
struct Remark {
  std::string Pass;       ///< emitting pass: promote, ptr-promote, licm, ...
  RemarkKind Kind = RemarkKind::Note;
  RemarkReason Reason = RemarkReason::None;
  std::string Function;   ///< enclosing function
  std::string LoopHeader; ///< loop header block name + "#" + id; "" = no loop
  unsigned LoopDepth = 0; ///< 1 = outermost; 0 = not in a loop
  std::string Tag;        ///< display name of the memory location; "" = none
  std::string Message;    ///< free-form human detail (may be empty)
};

/// Collects the remark stream of one compile job and renders it as human
/// text or JSON lines.
class RemarkEngine {
public:
  void add(Remark R) { Remarks.push_back(std::move(R)); }

  /// Convenience emitter used by the passes.
  void emit(const char *Pass, RemarkKind K, RemarkReason R,
            const std::string &Function, const std::string &LoopHeader,
            unsigned LoopDepth, const std::string &Tag,
            std::string Message = {});

  const std::vector<Remark> &remarks() const { return Remarks; }
  bool empty() const { return Remarks.empty(); }
  size_t size() const { return Remarks.size(); }

  /// Counts remarks of kind \p K (optionally restricted to one pass).
  size_t count(RemarkKind K, const std::string &PassFilter = {}) const;

  /// Human-readable stream, one line per remark, in emission order.
  /// \p PassFilter restricts to one pass when non-empty.
  std::string toText(const std::string &PassFilter = {}) const;

  /// Machine-readable stream: one JSON object per line. \p Extra key/value
  /// pairs (e.g. program and configuration in suite mode) are prepended to
  /// every object.
  std::string toJsonLines(
      const std::vector<std::pair<std::string, std::string>> &Extra =
          {}) const;

  static const char *kindName(RemarkKind K);
  static const char *reasonCode(RemarkReason R);

private:
  std::vector<Remark> Remarks;
};

/// Formats one remark the way toText does (exposed for golden tests).
std::string formatRemark(const Remark &R);

/// Stable display name for a tag: locals and spill slots are qualified with
/// their owning function ("name@func") so the (function, tag) join key used
/// by the explain report is unambiguous.
std::string tagDisplayName(const Module &M, uint32_t TagId);

} // namespace rpcc

#endif // RPCC_OBS_REMARK_H
