//===- obs/Metrics.cpp ----------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/Format.h"
#include "support/Json.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>

#if !defined(_WIN32)
#include <unistd.h>
#endif

using namespace rpcc;

//===----------------------------------------------------------------------===//
// Storage
//===----------------------------------------------------------------------===//

namespace rpcc {
namespace detail {

/// One cache line of scalar storage; counters/gauges use Shards only,
/// histograms additionally get MetricShardCount HistShards.
struct alignas(64) ValueShard {
  std::atomic<int64_t> V{0};
};

struct alignas(64) HistShard {
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Buckets[MetricHistogramBuckets]{};
};

struct Metric {
  std::string Name;
  MetricLabels Labels;
  MetricKind Kind;
  MetricStability Stability;
  std::string Unit;
  std::string Help;
  ValueShard Shards[MetricShardCount];
  std::unique_ptr<HistShard[]> Hist; // non-null iff Kind == Histogram
};

} // namespace detail
} // namespace rpcc

namespace {

long currentPid() {
#if defined(_WIN32)
  return 1;
#else
  return static_cast<long>(::getpid());
#endif
}

/// Threads spread across shards round-robin; the id is assigned on a
/// thread's first metric operation and reused for every metric.
unsigned shardId() {
  static std::atomic<unsigned> NextShard{0};
  static thread_local unsigned Id =
      NextShard.fetch_add(1, std::memory_order_relaxed) &
      (MetricShardCount - 1);
  return Id;
}

} // namespace

unsigned rpcc::metricBucketFor(uint64_t V) {
  if (V == 0)
    return 0;
#if defined(__GNUC__) || defined(__clang__)
  return 64u - static_cast<unsigned>(__builtin_clzll(V));
#else
  unsigned B = 0;
  while (V) {
    ++B;
    V >>= 1;
  }
  return B;
#endif
}

void Counter::inc(uint64_t N) const {
  if (!M)
    return;
  M->Shards[shardId()].V.fetch_add(static_cast<int64_t>(N),
                                   std::memory_order_relaxed);
}

void Gauge::add(int64_t Delta) const {
  if (!M)
    return;
  M->Shards[shardId()].V.fetch_add(Delta, std::memory_order_relaxed);
}

void Histogram::observe(uint64_t V) const {
  if (!M || !M->Hist)
    return;
  detail::HistShard &H = M->Hist[shardId()];
  H.Buckets[metricBucketFor(V)].fetch_add(1, std::memory_order_relaxed);
  H.Sum.fetch_add(V, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

MetricsRegistry::MetricsRegistry() : OwnerPid(currentPid()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry &MetricsRegistry::global() {
  static std::atomic<MetricsRegistry *> Reg{nullptr};
  long Pid = currentPid();
  MetricsRegistry *R = Reg.load(std::memory_order_acquire);
  if (R && R->OwnerPid == Pid)
    return *R;
  // First call in this process: either true process startup or the first
  // metric touched by a forked child. The constructor stamps OwnerPid
  // before the CAS publishes the pointer. At startup two threads can race
  // here and the loser deletes its candidate; after a fork there is exactly
  // one thread, the CAS always succeeds, and the parent's registry is
  // deliberately leaked in copy-on-write memory (handles cached in statics
  // still point into it, and LeakSanitizer never runs in children, which
  // leave via _exit).
  auto *Fresh = new MetricsRegistry();
  MetricsRegistry *Expected = R;
  if (Reg.compare_exchange_strong(Expected, Fresh, std::memory_order_acq_rel))
    return *Fresh;
  delete Fresh;
  return *Expected;
}

detail::Metric *MetricsRegistry::findOrCreate(MetricKind Kind,
                                              const std::string &Name,
                                              MetricLabels Labels,
                                              MetricStability St,
                                              const char *Unit,
                                              const char *Help) {
  std::string Key = Name;
  for (const auto &KV : Labels) {
    Key += '\x1f';
    Key += KV.first;
    Key += '=';
    Key += KV.second;
  }
  std::lock_guard<std::mutex> L(Mu);
  auto It = Metrics.find(Key);
  if (It != Metrics.end())
    return It->second.get();
  auto M = std::make_unique<detail::Metric>();
  M->Name = Name;
  M->Labels = std::move(Labels);
  M->Kind = Kind;
  M->Stability = St;
  M->Unit = Unit;
  M->Help = Help;
  if (Kind == MetricKind::Histogram)
    M->Hist = std::make_unique<detail::HistShard[]>(MetricShardCount);
  detail::Metric *Raw = M.get();
  Metrics.emplace(std::move(Key), std::move(M));
  return Raw;
}

Counter MetricsRegistry::counter(const std::string &Name, MetricLabels Labels,
                                 MetricStability St, const char *Unit,
                                 const char *Help) {
  return Counter(
      findOrCreate(MetricKind::Counter, Name, std::move(Labels), St, Unit,
                   Help));
}

Gauge MetricsRegistry::gauge(const std::string &Name, MetricLabels Labels,
                             MetricStability St, const char *Unit,
                             const char *Help) {
  return Gauge(findOrCreate(MetricKind::Gauge, Name, std::move(Labels), St,
                            Unit, Help));
}

Histogram MetricsRegistry::histogram(const std::string &Name,
                                     MetricLabels Labels, MetricStability St,
                                     const char *Unit, const char *Help) {
  return Histogram(findOrCreate(MetricKind::Histogram, Name, std::move(Labels),
                                St, Unit, Help));
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<MetricSample> Out;
  Out.reserve(Metrics.size());
  for (const auto &KV : Metrics) {
    const detail::Metric &M = *KV.second;
    MetricSample S;
    S.Name = M.Name;
    S.Labels = M.Labels;
    S.Kind = M.Kind;
    S.Stability = M.Stability;
    S.Unit = M.Unit;
    S.Help = M.Help;
    if (M.Kind == MetricKind::Histogram) {
      for (unsigned I = 0; I < MetricShardCount; ++I) {
        const detail::HistShard &H = M.Hist[I];
        S.Sum += H.Sum.load(std::memory_order_relaxed);
        for (int B = 0; B < MetricHistogramBuckets; ++B)
          S.Buckets[B] += H.Buckets[B].load(std::memory_order_relaxed);
      }
      for (int B = 0; B < MetricHistogramBuckets; ++B)
        S.Count += S.Buckets[B];
    } else {
      for (unsigned I = 0; I < MetricShardCount; ++I)
        S.Value += M.Shards[I].V.load(std::memory_order_relaxed);
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> L(Mu);
  for (auto &KV : Metrics) {
    detail::Metric &M = *KV.second;
    for (unsigned I = 0; I < MetricShardCount; ++I)
      M.Shards[I].V.store(0, std::memory_order_relaxed);
    if (M.Hist)
      for (unsigned I = 0; I < MetricShardCount; ++I) {
        M.Hist[I].Sum.store(0, std::memory_order_relaxed);
        for (int B = 0; B < MetricHistogramBuckets; ++B)
          M.Hist[I].Buckets[B].store(0, std::memory_order_relaxed);
      }
  }
}

//===----------------------------------------------------------------------===//
// Exposition
//===----------------------------------------------------------------------===//

uint64_t rpcc::metricsNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char *rpcc::metricKindName(MetricKind K) {
  switch (K) {
  case MetricKind::Counter:
    return "counter";
  case MetricKind::Gauge:
    return "gauge";
  case MetricKind::Histogram:
    return "histogram";
  }
  return "counter";
}

const char *rpcc::metricStabilityName(MetricStability St) {
  switch (St) {
  case MetricStability::Stable:
    return "stable";
  case MetricStability::CountStable:
    return "count-stable";
  case MetricStability::Volatile:
    return "volatile";
  }
  return "volatile";
}

std::string rpcc::metricsToJson(const std::vector<MetricSample> &Samples,
                                double WallMs) {
  std::ostringstream OS;
  OS << "{\"schema\":\"metrics\",\"wall_ms\":" << fixed(WallMs, 3)
     << ",\"metrics\":[";
  bool First = true;
  for (const MetricSample &S : Samples) {
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << "{\"name\":\"" << jsonEscape(S.Name) << "\",\"labels\":{";
    bool FirstLabel = true;
    for (const auto &KV : S.Labels) {
      if (!FirstLabel)
        OS << ",";
      FirstLabel = false;
      OS << "\"" << jsonEscape(KV.first) << "\":\"" << jsonEscape(KV.second)
         << "\"";
    }
    OS << "},\"kind\":\"" << metricKindName(S.Kind) << "\",\"stability\":\""
       << metricStabilityName(S.Stability) << "\",\"unit\":\""
       << jsonEscape(S.Unit) << "\",\"help\":\"" << jsonEscape(S.Help)
       << "\"";
    if (S.Kind == MetricKind::Histogram) {
      OS << ",\"count\":" << S.Count << ",\"sum\":" << S.Sum
         << ",\"buckets\":[";
      for (int B = 0; B < MetricHistogramBuckets; ++B) {
        if (B)
          OS << ",";
        OS << S.Buckets[B];
      }
      OS << "]}";
    } else {
      OS << ",\"value\":" << S.Value << "}";
    }
  }
  OS << "\n]}\n";
  return OS.str();
}

namespace {

std::string promName(const std::string &Name) {
  std::string Out = "rpcc_";
  for (char C : Name)
    Out.push_back(C == '.' ? '_' : C);
  return Out;
}

std::string promLabelEscape(const std::string &V) {
  std::string Out;
  for (char C : V) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out.push_back(C);
  }
  return Out;
}

/// Renders {k="v",...} including optional extra label (for le=).
std::string promLabels(const MetricLabels &Labels, const char *ExtraKey,
                       const std::string &ExtraVal) {
  if (Labels.empty() && !ExtraKey)
    return "";
  std::string Out = "{";
  bool First = true;
  for (const auto &KV : Labels) {
    if (!First)
      Out += ",";
    First = false;
    Out += KV.first;
    Out += "=\"";
    Out += promLabelEscape(KV.second);
    Out += "\"";
  }
  if (ExtraKey) {
    if (!First)
      Out += ",";
    Out += ExtraKey;
    Out += "=\"";
    Out += ExtraVal;
    Out += "\"";
  }
  Out += "}";
  return Out;
}

} // namespace

std::string rpcc::metricsToProm(const std::vector<MetricSample> &Samples) {
  std::ostringstream OS;
  std::string PrevName;
  for (const MetricSample &S : Samples) {
    std::string PName = promName(S.Name);
    if (S.Name != PrevName) {
      PrevName = S.Name;
      OS << "# HELP " << PName << " " << S.Help << "\n";
      OS << "# TYPE " << PName << " " << metricKindName(S.Kind) << "\n";
    }
    if (S.Kind == MetricKind::Histogram) {
      // Buckets 1..63 carry upper bound 2^k - 1 (inclusive, matching the
      // half-open [2^(k-1), 2^k) layout); bucket 64 folds into +Inf.
      uint64_t Cum = 0;
      for (int B = 0; B < 64; ++B) {
        Cum += S.Buckets[B];
        uint64_t Le = B == 0 ? 0 : (uint64_t(1) << B) - 1;
        OS << PName << "_bucket"
           << promLabels(S.Labels, "le", std::to_string(Le)) << " " << Cum
           << "\n";
      }
      Cum += S.Buckets[64];
      OS << PName << "_bucket" << promLabels(S.Labels, "le", "+Inf") << " "
         << Cum << "\n";
      OS << PName << "_sum" << promLabels(S.Labels, nullptr, "") << " "
         << S.Sum << "\n";
      OS << PName << "_count" << promLabels(S.Labels, nullptr, "") << " "
         << S.Count << "\n";
    } else {
      OS << PName << promLabels(S.Labels, nullptr, "") << " " << S.Value
         << "\n";
    }
  }
  return OS.str();
}

std::string rpcc::metricsCanon(const std::vector<MetricSample> &Samples) {
  std::ostringstream OS;
  for (const MetricSample &S : Samples) {
    if (S.Stability == MetricStability::Volatile)
      continue;
    OS << S.Name;
    if (!S.Labels.empty()) {
      OS << "{";
      bool First = true;
      for (const auto &KV : S.Labels) {
        if (!First)
          OS << ",";
        First = false;
        OS << KV.first << "=" << KV.second;
      }
      OS << "}";
    }
    if (S.Kind == MetricKind::Histogram) {
      OS << " count=" << S.Count;
      if (S.Stability == MetricStability::Stable) {
        OS << " sum=" << S.Sum << " buckets=";
        bool First = true;
        for (int B = 0; B < MetricHistogramBuckets; ++B) {
          if (!S.Buckets[B])
            continue;
          if (!First)
            OS << ",";
          First = false;
          OS << B << ":" << S.Buckets[B];
        }
        if (First)
          OS << "-";
      }
    } else {
      OS << " " << S.Value;
    }
    OS << "\n";
  }
  return OS.str();
}

int64_t rpcc::metricsValue(const std::vector<MetricSample> &Samples,
                           const std::string &Name) {
  int64_t V = 0;
  for (const MetricSample &S : Samples)
    if (S.Name == Name && S.Kind != MetricKind::Histogram)
      V += S.Value;
  return V;
}

void rpcc::metricsHistTotals(const std::vector<MetricSample> &Samples,
                             const std::string &Name, uint64_t &Count,
                             uint64_t &Sum) {
  Count = 0;
  Sum = 0;
  for (const MetricSample &S : Samples)
    if (S.Name == Name && S.Kind == MetricKind::Histogram) {
      Count += S.Count;
      Sum += S.Sum;
    }
}

//===----------------------------------------------------------------------===//
// Heartbeat
//===----------------------------------------------------------------------===//

Heartbeat::Heartbeat(unsigned IntervalSecs, const char *Tool)
    : Secs(IntervalSecs), Tool(Tool) {
  if (Secs > 0)
    Thr = std::thread([this] { loop(); });
}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::stop() {
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Stopping)
      return;
    Stopping = true;
  }
  Cv.notify_all();
  if (Thr.joinable())
    Thr.join();
}

void Heartbeat::loop() {
  uint64_t LastTick = metricsNowUs();
  std::unique_lock<std::mutex> L(Mu);
  for (;;) {
    if (Cv.wait_for(L, std::chrono::seconds(Secs),
                    [this] { return Stopping; }))
      return;
    L.unlock();
    std::vector<MetricSample> Samples = MetricsRegistry::global().snapshot();
    uint64_t Now = metricsNowUs();
    double Elapsed = static_cast<double>(Now - LastTick) / 1e6;
    LastTick = Now;
    std::string Line = formatLine(Samples, Elapsed > 0 ? Elapsed : 1e-9);
    std::fprintf(stderr, "%s\n", Line.c_str());
    L.lock();
  }
}

std::string Heartbeat::formatLine(const std::vector<MetricSample> &Samples,
                                  double ElapsedSecs) {
  std::vector<std::string> Parts;
  int64_t Seeds = metricsValue(Samples, "fuzz.seeds");
  if (Seeds > 0) {
    double Rate =
        static_cast<double>(Seeds - static_cast<int64_t>(LastSeeds)) /
        ElapsedSecs;
    Parts.push_back(std::to_string(Seeds) + " seeds (" + fixed(Rate, 1) +
                    "/s)");
    LastSeeds = static_cast<uint64_t>(Seeds);
  }
  int64_t Cells = metricsValue(Samples, "suite.cells");
  if (Cells > 0)
    Parts.push_back(std::to_string(Cells) + " cells");
  int64_t Requests = metricsValue(Samples, "served.requests");
  if (Requests > 0) {
    double Rate =
        static_cast<double>(Requests - static_cast<int64_t>(LastRequests)) /
        ElapsedSecs;
    Parts.push_back(std::to_string(Requests) + " reqs (" + fixed(Rate, 1) +
                    "/s)");
    LastRequests = static_cast<uint64_t>(Requests);
  }
  int64_t SHits = metricsValue(Samples, "served.cache_hits");
  int64_t SMisses = metricsValue(Samples, "served.cache_misses");
  if (SHits + SMisses > 0) {
    double Pct = 100.0 * static_cast<double>(SHits) /
                 static_cast<double>(SHits + SMisses);
    Parts.push_back("artifacts " + fixed(Pct, 1) + "% hit");
  }
  int64_t Hits = metricsValue(Samples, "cache.hits");
  int64_t Misses = metricsValue(Samples, "cache.misses");
  if (Hits + Misses > 0) {
    double Pct =
        100.0 * static_cast<double>(Hits) / static_cast<double>(Hits + Misses);
    Parts.push_back("cache " + fixed(Pct, 1) + "% hit");
  }
  uint64_t BusyCount = 0, BusyUs = 0;
  metricsHistTotals(Samples, "pool.item_us", BusyCount, BusyUs);
  if (BusyUs > LastBusyUs) {
    double Workers =
        static_cast<double>(BusyUs - LastBusyUs) / (ElapsedSecs * 1e6);
    Parts.push_back(fixed(Workers, 1) + " workers busy");
  }
  LastBusyUs = BusyUs;
  std::string Line = Tool + ": heartbeat:";
  if (Parts.empty())
    return Line + " warming up";
  for (size_t I = 0; I < Parts.size(); ++I)
    Line += (I ? ", " : " ") + Parts[I];
  return Line;
}
