//===- regalloc/GraphColoring.h - Chaitin-Briggs allocator -------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph-coloring register allocation following Briggs, Cooper & Torczon
/// (TOPLAS 1994), the allocator the paper uses ([1]): build, conservative
/// coalesce, simplify with optimistic spilling, select, and spill-code
/// insertion, iterating until the graph colors. Promotion's copies "are
/// subject to coalescing by the register allocator. It is quite effective
/// at eliminating copies like these." When demand exceeds supply the
/// allocator spills — reproducing the paper's `water` anecdote, where
/// twenty-eight promoted values caused enough spilling to lose.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_REGALLOC_GRAPHCOLORING_H
#define RPCC_REGALLOC_GRAPHCOLORING_H

#include "ir/Module.h"

namespace rpcc {

struct RegAllocOptions {
  /// Registers per class. The machine model is MIPS-era: NumRegisters
  /// integer registers plus NumRegisters floating-point registers.
  /// Physical numbering: integers take 0..K-1, floats K..2K-1.
  unsigned NumRegisters = 32;
  /// George's coalescing test in addition to Briggs' (iterated-coalescing
  /// vintage). Off approximates the paper's 1994-era allocator, which
  /// footnotes that graph-coloring allocators "are known to over-spill in
  /// tight situations".
  bool GeorgeCoalescing = true;
  /// Rematerialize constants/addresses instead of spilling them.
  bool Rematerialization = true;
};

struct RegAllocStats {
  unsigned CoalescedCopies = 0;     ///< copies merged away
  unsigned SpilledRegs = 0;         ///< virtual registers sent to memory
  unsigned RematerializedRegs = 0;  ///< constants/addresses recomputed
  unsigned SpillLoads = 0;          ///< static reload instructions inserted
  unsigned SpillStores = 0;         ///< static spill-store instructions
  unsigned Rounds = 0;              ///< build/spill iterations
  unsigned ColorsUsed = 0;
};

/// Allocates one function: after return every register index is < K, spill
/// code references fresh Spill tags, and coalesced/identity copies are gone.
RegAllocStats allocateRegisters(Module &M, Function &F,
                                const RegAllocOptions &Opts = {});

/// Allocates every non-builtin function.
RegAllocStats allocateRegisters(Module &M, const RegAllocOptions &Opts = {});

} // namespace rpcc

#endif // RPCC_REGALLOC_GRAPHCOLORING_H
