//===- regalloc/Liverange.h - Interference graph -----------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interference graph and spill costs for the Chaitin-Briggs allocator
/// (Briggs, Cooper & Torczon, TOPLAS 1994 — the paper's reference [1]).
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_REGALLOC_LIVERANGE_H
#define RPCC_REGALLOC_LIVERANGE_H

#include "ir/Function.h"
#include "support/DenseBitSet.h"

#include <vector>

namespace rpcc {

/// Interference graph over virtual registers, built from backward liveness.
/// Copy sources do not interfere with copy destinations (enables
/// coalescing).
class InterferenceGraph {
public:
  /// Requires up-to-date CFG lists; computes liveness internally.
  explicit InterferenceGraph(const Function &F);

  size_t numNodes() const { return N; }
  bool interfere(Reg A, Reg B) const { return Matrix[A].test(B); }
  unsigned degree(Reg A) const { return Degrees[A]; }
  const std::vector<Reg> &neighbors(Reg A) const { return Adj[A]; }

  /// True if the register is defined or used anywhere.
  bool isLive(Reg A) const { return Live[A]; }

  /// Copy instructions found during the build: (dst, src) pairs.
  struct CopyEdge {
    Reg Dst, Src;
  };
  const std::vector<CopyEdge> &copies() const { return Copies; }

  /// Spill priority: dynamic-count estimate (uses+defs weighted by
  /// 10^loop-depth) divided by degree. Lower is cheaper to spill.
  const std::vector<double> &spillCosts() const { return Costs; }

private:
  void addEdge(Reg A, Reg B);

  size_t N;
  std::vector<DenseBitSet> Matrix;
  std::vector<std::vector<Reg>> Adj;
  std::vector<unsigned> Degrees;
  std::vector<bool> Live;
  std::vector<CopyEdge> Copies;
  std::vector<double> Costs;
};

} // namespace rpcc

#endif // RPCC_REGALLOC_LIVERANGE_H
