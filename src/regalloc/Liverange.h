//===- regalloc/Liverange.h - Interference graph -----------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interference graph and spill costs for the Chaitin-Briggs allocator
/// (Briggs, Cooper & Torczon, TOPLAS 1994 — the paper's reference [1]).
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_REGALLOC_LIVERANGE_H
#define RPCC_REGALLOC_LIVERANGE_H

#include "ir/Function.h"
#include "support/DenseBitSet.h"

#include <vector>

namespace rpcc {

/// Interference graph over virtual registers, built from backward liveness.
/// Copy sources do not interfere with copy destinations (enables
/// coalescing).
class InterferenceGraph {
public:
  /// Requires up-to-date CFG lists; computes liveness and loop-depth
  /// weights internally.
  explicit InterferenceGraph(const Function &F);

  /// As above, but with precomputed per-block spill-cost weights
  /// (10^loop-depth). The allocator hoists these out of its spill rounds:
  /// rounds change instructions, never the CFG.
  InterferenceGraph(const Function &F,
                    const std::vector<double> &BlockWeight);

  size_t numNodes() const { return N; }
  bool interfere(Reg A, Reg B) const { return Matrix[A].test(B); }
  unsigned degree(Reg A) const { return Degrees[A]; }
  const std::vector<Reg> &neighbors(Reg A) const { return Adj[A]; }

  /// True if the register is defined or used anywhere and has not been
  /// folded into another node by merge().
  bool isLive(Reg A) const { return Live[A]; }

  /// Per-node degree within its own register class (colors are per-class,
  /// so only same-class neighbors constrain coloring). Maintained across
  /// merge() calls.
  unsigned classDegree(Reg A) const { return ClassDeg[A]; }
  const std::vector<unsigned> &classDegrees() const { return ClassDeg; }

  /// Coalesce update: fold node \p B into node \p A in place. The merged
  /// node's neighborhood becomes the union of the two old neighborhoods,
  /// which equals the true interference of the combined live range —
  /// interference only arises at definitions, and every edge visible at
  /// the (removed) copy is already visible at a definition of A or B — so
  /// the updated graph matches a from-scratch rebuild of the rewritten
  /// function, and spill costs are re-normalized against the new degrees.
  /// \p B becomes dead (isLive() false); stale \p B entries may linger in
  /// neighbors' adjacency lists, so traversals must skip non-live nodes.
  /// Requires the two nodes be distinct, live, non-interfering, and of
  /// the same register class. \p CopyWeight is the deleted copy's weight
  /// (one def + one use leave the program with it).
  void merge(Reg A, Reg B, double CopyWeight);

  /// Copy instructions found during the build: (dst, src) pairs plus the
  /// copy's own spill-cost weight (10^loop-depth), so coalescing can
  /// deduct the instruction it deletes from the merged node's cost.
  struct CopyEdge {
    Reg Dst, Src;
    double Weight;
  };
  const std::vector<CopyEdge> &copies() const { return Copies; }

  /// Spill priority: dynamic-count estimate (uses+defs weighted by
  /// 10^loop-depth) divided by degree. Lower is cheaper to spill.
  const std::vector<double> &spillCosts() const { return Costs; }

private:
  size_t N;
  std::vector<DenseBitSet> Matrix;
  std::vector<std::vector<Reg>> Adj;
  std::vector<unsigned> Degrees;
  std::vector<unsigned> ClassDeg;
  std::vector<RegType> Types;
  std::vector<bool> Live;
  std::vector<CopyEdge> Copies;
  std::vector<double> RawCosts;
  std::vector<double> Costs;
};

} // namespace rpcc

#endif // RPCC_REGALLOC_LIVERANGE_H
