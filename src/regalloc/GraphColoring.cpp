//===- regalloc/GraphColoring.cpp -----------------------------------------===//

#include "regalloc/GraphColoring.h"

#include "analysis/Cfg.h"
#include "analysis/LoopInfo.h"
#include "regalloc/Liverange.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <queue>

using namespace rpcc;

namespace {

class Allocator {
public:
  Allocator(Module &M, Function &F, const RegAllocOptions &Opts,
            RegAllocStats &Stats)
      : M(M), F(F), Opts(Opts), K(effectiveK(F, Opts.NumRegisters)),
        Stats(Stats) {}

  /// Arguments are passed in registers, so an instruction with N operands
  /// needs N simultaneous registers no matter how much we spill; likewise
  /// a function's incoming parameters are all live at once on entry. Clamp
  /// K up to that structural minimum (plus one for a defined result).
  static unsigned effectiveK(const Function &F, unsigned K) {
    unsigned MinK = 4;
    for (const auto &B : F.blocks())
      for (const auto &IP : B->insts())
        MinK = std::max(MinK, static_cast<unsigned>(IP->Ops.size()) + 1);
    unsigned IntParams = 0, FltParams = 0;
    for (Reg P : F.paramRegs()) {
      if (F.regType(P) == RegType::Flt)
        ++FltParams;
      else
        ++IntParams;
    }
    MinK = std::max(MinK, IntParams + 1);
    MinK = std::max(MinK, FltParams + 1);
    return std::max(K, MinK);
  }

  void run() {
    recomputeCfg(F);
    // Spill rounds insert instructions but never touch the CFG, so the
    // loop-depth spill weights are computed once for every graph build.
    {
      LoopInfo LI(F);
      BlockWeight.assign(F.numBlocks(), 1.0);
      for (BlockId B = 0; B != F.numBlocks(); ++B) {
        int LoopIdx = LI.innermostLoop(B);
        unsigned Depth = LoopIdx < 0 ? 0 : LI.loop(LoopIdx).Depth;
        BlockWeight[B] = std::pow(10.0, static_cast<double>(Depth));
      }
    }
    for (unsigned Round = 0; Round < 100; ++Round) {
      ++Stats.Rounds;
      // coalesce() folds merges into the round's single graph with the
      // union update, which matches a from-scratch rebuild of the
      // rewritten function (see InterferenceGraph::merge) — so the graph
      // it hands back is colored directly, and the only rebuilds left are
      // the one per spill round.
      std::unique_ptr<InterferenceGraph> IG = coalesce();
      std::vector<Reg> SpillList;
      if (color(*IG, SpillList)) {
        rewriteToColors();
        return;
      }
      for (Reg V : SpillList)
        spill(V);
    }
    assert(false && "register allocation failed to converge");
  }

private:
  // -- Coalescing ---------------------------------------------------------
  /// Briggs conservative test: merging is safe if the combined node has
  /// fewer than K same-class neighbors of significant degree. Dead
  /// adjacency entries (nodes already folded away by earlier merges) are
  /// skipped lazily.
  bool briggsSafe(const InterferenceGraph &IG, Reg A, Reg B) {
    unsigned Significant = 0;
    for (Reg Nb : IG.neighbors(A)) {
      if (Nb == B || !IG.isLive(Nb) || F.regType(Nb) != F.regType(A))
        continue;
      unsigned Deg = IG.classDegree(Nb);
      if (IG.interfere(Nb, B))
        --Deg; // merged node counts once
      if (Deg >= K)
        ++Significant;
    }
    // Neighbors of B not shared with A.
    for (Reg Nb : IG.neighbors(B)) {
      if (Nb == A || !IG.isLive(Nb) || IG.interfere(Nb, A) ||
          F.regType(Nb) != F.regType(B))
        continue;
      if (IG.classDegree(Nb) >= K)
        ++Significant;
    }
    return Significant < K;
  }

  /// George's coalescing test: merging B into A is safe if every
  /// same-class neighbor of B either already interferes with A or is of
  /// insignificant degree. Catches the long-live-range copies (promotion's
  /// accumulators) that the Briggs test rejects under pressure.
  bool georgeSafe(const InterferenceGraph &IG, Reg A, Reg B) {
    for (Reg Nb : IG.neighbors(B)) {
      if (Nb == A || !IG.isLive(Nb) || F.regType(Nb) != F.regType(B))
        continue;
      if (IG.classDegree(Nb) >= K && !IG.interfere(Nb, A))
        return false;
    }
    return true;
  }

  /// Representative of \p R under the pending merges, with path
  /// compression.
  static Reg rep(std::vector<Reg> &Remap, Reg R) {
    while (Remap[R] != R) {
      Remap[R] = Remap[Remap[R]]; // halve the chain
      R = Remap[R];
    }
    return R;
  }

  /// Coalesce to a fixpoint on one interference graph. Each merge folds
  /// the copy's endpoints with InterferenceGraph::merge — the conservative
  /// union update — which keeps degrees current, so no rebuild is needed
  /// between sweeps; sweeps repeat only because a merge elsewhere can drop
  /// a neighborhood below the Briggs threshold and unlock another copy.
  std::unique_ptr<InterferenceGraph> coalesce() {
    auto IG = std::make_unique<InterferenceGraph>(F, BlockWeight);
    std::vector<Reg> Remap(F.numRegs());
    for (Reg R = 0; R != F.numRegs(); ++R)
      Remap[R] = R;
    bool NeedRewrite = false;

    for (bool MergedAny = true; MergedAny;) {
      MergedAny = false;
      for (const auto &C : IG->copies()) {
        Reg A = rep(Remap, C.Dst), B = rep(Remap, C.Src);
        if (A == B || IG->interfere(A, B))
          continue;
        if (F.regType(A) != F.regType(B))
          continue;
        bool Safe = briggsSafe(*IG, A, B) ||
                    (Opts.GeorgeCoalescing &&
                     (georgeSafe(*IG, A, B) || georgeSafe(*IG, B, A)));
        if (!Safe)
          continue;
        IG->merge(A, B, C.Weight);
        Remap[B] = A;
        NeedRewrite = true;
        MergedAny = true;
        ++Stats.CoalescedCopies;
      }
    }
    if (NeedRewrite) {
      for (Reg R = 0; R != F.numRegs(); ++R)
        Remap[R] = rep(Remap, R);
      applyRemap(Remap);
    }
    return IG;
  }

  void applyRemap(const std::vector<Reg> &Remap) {
    for (auto &B : F.blocks()) {
      auto &Insts = B->insts();
      for (size_t Idx = 0; Idx < Insts.size(); ++Idx) {
        Instruction &I = *Insts[Idx];
        if (I.hasResult())
          I.Result = Remap[I.Result];
        for (Reg &R : I.Ops)
          R = Remap[R];
        if (I.Op == Opcode::Copy && I.Result == I.Ops[0]) {
          B->eraseAt(Idx);
          --Idx;
        }
      }
    }
    for (Reg &P : F.paramRegs())
      P = Remap[P];
  }

  // -- Coloring -------------------------------------------------------------
  /// Colors both register classes; integer nodes draw from {0..K-1},
  /// floats from {K..2K-1}. Only same-class neighbors constrain a node.
  bool color(const InterferenceGraph &IG, std::vector<Reg> &SpillList) {
    const size_t N = F.numRegs();
    std::vector<unsigned> Degree = IG.classDegrees();
    std::vector<bool> Removed(N, true);
    std::vector<Reg> Stack;
    // Low-degree nodes awaiting simplification, kept in a min-heap so each
    // pick is the lowest-numbered eligible node — the same node a linear
    // rescan would find. Degrees only decrease, so a node enters at most
    // once (the Queued flags make re-inserts no-ops).
    std::priority_queue<Reg, std::vector<Reg>, std::greater<Reg>> LowDegree;
    std::vector<char> Queued(N, 0);
    size_t Remaining = 0;
    for (Reg R = 0; R != N; ++R) {
      if (!IG.isLive(R))
        continue;
      Removed[R] = false;
      if (Degree[R] < K) {
        LowDegree.push(R);
        Queued[R] = 1;
      }
      ++Remaining;
    }

    // Simplify with optimistic spill candidates.
    while (Remaining) {
      Reg Pick = NoReg;
      if (!LowDegree.empty()) {
        Pick = LowDegree.top();
        LowDegree.pop();
      } else {
        // Optimistic spill: cheapest candidate, avoiding spiller temps.
        double Best = 0;
        for (Reg R = 0; R != N; ++R) {
          if (Removed[R])
            continue;
          double Cost = IG.spillCosts()[R];
          if (NoSpill.size() > R && NoSpill[R])
            Cost += 1e12; // strongly avoid re-spilling reload temps
          if (Pick == NoReg || Cost < Best) {
            Pick = R;
            Best = Cost;
          }
        }
      }
      Removed[Pick] = true;
      --Remaining;
      Stack.push_back(Pick);
      for (Reg Nb : IG.neighbors(Pick))
        if (!Removed[Nb] && Degree[Nb] > 0 &&
            F.regType(Nb) == F.regType(Pick)) {
          --Degree[Nb];
          if (Degree[Nb] < K && !Queued[Nb]) {
            LowDegree.push(Nb);
            Queued[Nb] = 1;
          }
        }
    }

    // Select. One stamp buffer serves every node: a color is "used" for
    // the node under consideration iff its stamp matches that node's
    // epoch, so no per-node clearing or allocation is needed.
    Colors.assign(N, -1);
    bool Success = true;
    std::vector<unsigned> UsedStamp(K, 0);
    unsigned Epoch = 0;
    for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
      Reg R = *It;
      ++Epoch;
      for (Reg Nb : IG.neighbors(R))
        if (Colors[Nb] >= 0 && F.regType(Nb) == F.regType(R))
          UsedStamp[classColor(Nb)] = Epoch;
      int C = -1;
      for (unsigned I = 0; I != K; ++I)
        if (UsedStamp[I] != Epoch) {
          C = static_cast<int>(I);
          break;
        }
      if (C < 0) {
        SpillList.push_back(R);
        Success = false;
      } else {
        bool IsFlt = F.regType(R) == RegType::Flt;
        Colors[R] = C + (IsFlt ? static_cast<int>(K) : 0);
        Stats.ColorsUsed =
            std::max(Stats.ColorsUsed, static_cast<unsigned>(C) + 1);
      }
    }
    return Success;
  }

  /// The within-class color of an already-colored node.
  unsigned classColor(Reg R) const {
    int C = Colors[R];
    return static_cast<unsigned>(C) >= K ? static_cast<unsigned>(C) - K
                                         : static_cast<unsigned>(C);
  }

  // -- Spilling --------------------------------------------------------------
  /// Briggs-style rematerialization: a register whose only definition is a
  /// constant or tag address is recomputed at each use instead of being
  /// stored and reloaded — hoisted loop invariants spill for free.
  bool tryRematerialize(Reg V) {
    const Instruction *Def = nullptr;
    unsigned NumDefs = 0;
    for (Reg P : F.paramRegs())
      if (P == V)
        return false;
    for (const auto &B : F.blocks())
      for (const auto &IP : B->insts())
        if (IP->hasResult() && IP->Result == V) {
          ++NumDefs;
          Def = IP.get();
        }
    if (NumDefs != 1 || !Def)
      return false;
    if (Def->Op != Opcode::LoadI && Def->Op != Opcode::LoadF &&
        Def->Op != Opcode::LoadAddr)
      return false;

    Instruction DefCopy = Def->clone();
    for (auto &B : F.blocks()) {
      auto &Insts = B->insts();
      for (size_t Idx = 0; Idx < Insts.size(); ++Idx) {
        Instruction &I = *Insts[Idx];
        bool UsesV = false;
        for (Reg R : I.Ops)
          UsesV |= R == V;
        if (!UsesV)
          continue;
        Reg Tmp = F.newReg(F.regType(V));
        if (NoSpill.size() <= Tmp)
          NoSpill.resize(Tmp + 1, false);
        NoSpill[Tmp] = true;
        Instruction Clone = DefCopy.clone();
        Clone.Result = Tmp;
        B->insertAt(Idx, std::move(Clone));
        ++Idx;
        Instruction &I2 = *Insts[Idx];
        for (Reg &R : I2.Ops)
          if (R == V)
            R = Tmp;
      }
    }
    // Delete the original definition; V is now dead.
    for (auto &B : F.blocks()) {
      auto &Insts = B->insts();
      for (size_t Idx = 0; Idx < Insts.size(); ++Idx)
        if (Insts[Idx]->hasResult() && Insts[Idx]->Result == V) {
          B->eraseAt(Idx);
          return true;
        }
    }
    return true;
  }

  void spill(Reg V) {
    if (Opts.Rematerialization && tryRematerialize(V)) {
      ++Stats.RematerializedRegs;
      return;
    }
    ++Stats.SpilledRegs;
    MemType MT = F.regType(V) == RegType::Flt ? MemType::F64 : MemType::I64;
    TagId SpillTag = M.tags().createSpill(
        "spill." + F.name() + "." + std::to_string(Stats.SpilledRegs), F.id(),
        MT);

    auto MarkNoSpill = [&](Reg R) {
      if (NoSpill.size() <= R)
        NoSpill.resize(R + 1, false);
      NoSpill[R] = true;
    };

    // Parameters arrive in V: store them on entry before any use.
    bool IsParam = false;
    for (Reg P : F.paramRegs())
      IsParam |= P == V;
    if (IsParam) {
      Instruction St(Opcode::ScalarStore);
      St.Tag = SpillTag;
      St.MemTy = MT;
      St.Ops = {V};
      F.entry()->insertAt(0, std::move(St));
      ++Stats.SpillStores;
    }

    for (auto &B : F.blocks()) {
      auto &Insts = B->insts();
      for (size_t Idx = 0; Idx < Insts.size(); ++Idx) {
        Instruction &I = *Insts[Idx];
        // Skip the entry store we just inserted.
        if (I.Op == Opcode::ScalarStore && I.Tag == SpillTag)
          continue;
        bool UsesV = false;
        for (Reg R : I.Ops)
          UsesV |= R == V;
        if (UsesV) {
          Reg Tmp = F.newReg(F.regType(V));
          MarkNoSpill(Tmp);
          Instruction Ld(Opcode::ScalarLoad);
          Ld.Tag = SpillTag;
          Ld.MemTy = MT;
          Ld.Result = Tmp;
          B->insertAt(Idx, std::move(Ld));
          ++Idx; // I moved one slot down
          Instruction &I2 = *Insts[Idx];
          for (Reg &R : I2.Ops)
            if (R == V)
              R = Tmp;
          ++Stats.SpillLoads;
        }
        Instruction &ICur = *Insts[Idx];
        if (ICur.hasResult() && ICur.Result == V) {
          Reg Tmp = F.newReg(F.regType(V));
          MarkNoSpill(Tmp);
          ICur.Result = Tmp;
          Instruction St(Opcode::ScalarStore);
          St.Tag = SpillTag;
          St.MemTy = MT;
          St.Ops = {Tmp};
          B->insertAt(Idx + 1, std::move(St));
          ++Idx;
          ++Stats.SpillStores;
        }
      }
    }
  }

  // -- Final rewrite ------------------------------------------------------------
  void rewriteToColors() {
    for (auto &B : F.blocks()) {
      auto &Insts = B->insts();
      for (size_t Idx = 0; Idx < Insts.size(); ++Idx) {
        Instruction &I = *Insts[Idx];
        if (I.hasResult()) {
          assert(Colors[I.Result] >= 0 && "uncolored defined register");
          I.Result = static_cast<Reg>(Colors[I.Result]);
        }
        for (Reg &R : I.Ops) {
          assert(Colors[R] >= 0 && "uncolored used register");
          R = static_cast<Reg>(Colors[R]);
        }
        // Copies whose operands landed in the same register disappear.
        if (I.Op == Opcode::Copy && I.Result == I.Ops[0]) {
          B->eraseAt(Idx);
          --Idx;
        }
      }
    }
    for (Reg &P : F.paramRegs())
      P = static_cast<Reg>(Colors[P]);
    F.resetRegisters(2 * K);
  }

  Module &M;
  Function &F;
  const RegAllocOptions &Opts;
  const unsigned K;
  RegAllocStats &Stats;
  std::vector<int> Colors;
  std::vector<bool> NoSpill;
  std::vector<double> BlockWeight;
};

} // namespace

RegAllocStats rpcc::allocateRegisters(Module &M, Function &F,
                                      const RegAllocOptions &Opts) {
  RegAllocStats Stats;
  Allocator(M, F, Opts, Stats).run();
  return Stats;
}

RegAllocStats rpcc::allocateRegisters(Module &M, const RegAllocOptions &Opts) {
  RegAllocStats Total;
  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    Function *F = M.function(static_cast<FuncId>(FI));
    if (F->isBuiltin() || F->numBlocks() == 0)
      continue;
    RegAllocStats S = allocateRegisters(M, *F, Opts);
    Total.CoalescedCopies += S.CoalescedCopies;
    Total.SpilledRegs += S.SpilledRegs;
    Total.RematerializedRegs += S.RematerializedRegs;
    Total.SpillLoads += S.SpillLoads;
    Total.SpillStores += S.SpillStores;
    Total.Rounds += S.Rounds;
    Total.ColorsUsed = std::max(Total.ColorsUsed, S.ColorsUsed);
  }
  return Total;
}
