//===- regalloc/Liverange.cpp ---------------------------------------------===//

#include "regalloc/Liverange.h"

#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"

#include <cmath>

using namespace rpcc;

namespace {
/// 10^loop-depth per block — the classic spill-cost weight.
std::vector<double> loopWeights(const Function &F) {
  LoopInfo LI(F);
  std::vector<double> W(F.numBlocks(), 1.0);
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    int LoopIdx = LI.innermostLoop(B);
    unsigned Depth = LoopIdx < 0 ? 0 : LI.loop(LoopIdx).Depth;
    W[B] = std::pow(10.0, static_cast<double>(Depth));
  }
  return W;
}
} // namespace

InterferenceGraph::InterferenceGraph(const Function &F)
    : InterferenceGraph(F, loopWeights(F)) {}

InterferenceGraph::InterferenceGraph(const Function &F,
                                     const std::vector<double> &BlockWeight)
    : N(F.numRegs()), Matrix(N, DenseBitSet(N)), Adj(N), Degrees(N, 0),
      ClassDeg(N, 0), Types(N), Live(N, false), RawCosts(N, 0.0),
      Costs(N, 0.0) {
  for (Reg R = 0; R != N; ++R)
    Types[R] = F.regType(R);
  Liveness LV(F);

  for (Reg P : F.paramRegs())
    Live[P] = true;

  // Each definition interferes with everything live across it. The live
  // set is unioned into the definition's matrix row word-parallel; rows
  // are symmetrized below, once, instead of mirroring every bit as it is
  // discovered.
  for (const auto &B : F.blocks()) {
    // Spill-cost weight grows with loop depth.
    double Weight = BlockWeight[B->id()];

    DenseBitSet LiveNow = LV.liveOut(B->id());
    // Walk backward building interferences.
    const auto &Insts = B->insts();
    for (size_t Idx = Insts.size(); Idx-- > 0;) {
      const Instruction &I = *Insts[Idx];
      if (I.hasResult()) {
        Live[I.Result] = true;
        RawCosts[I.Result] += Weight;
        if (I.Op == Opcode::Copy) {
          Copies.push_back(CopyEdge{I.Result, I.Ops[0], Weight});
          // Chaitin's refinement: the copy source does not interfere with
          // the destination (they may share a register).
          LiveNow.reset(I.Ops[0]);
        }
        Matrix[I.Result].unionWith(LiveNow);
        LiveNow.reset(I.Result);
      }
      for (Reg U : I.Ops) {
        LiveNow.set(U);
        Live[U] = true;
        RawCosts[U] += Weight;
      }
    }
    // Parameters are defined at entry: they interfere with everything live
    // into the entry block.
    if (B->id() == 0) {
      const DenseBitSet &EntryIn = LV.liveIn(0);
      for (Reg P : F.paramRegs())
        Matrix[P].unionWith(EntryIn);
    }
  }

  // Drop self-edges, then close the matrix under symmetry. Setting the
  // mirror bit of an already-mirrored edge is a no-op, so visiting rows in
  // order — including transpose bits added by earlier rows — is safe.
  for (Reg R = 0; R != N; ++R)
    Matrix[R].reset(R);
  for (Reg R = 0; R != N; ++R)
    Matrix[R].forEach([&](size_t Other) {
      Matrix[Other].set(R);
    });

  // Adjacency lists, degrees, and per-class degrees straight off the
  // final rows (neighbors in register order).
  for (Reg R = 0; R != N; ++R) {
    Adj[R].reserve(Matrix[R].count());
    Matrix[R].forEach([&](size_t Other) {
      Adj[R].push_back(static_cast<Reg>(Other));
      if (Types[Other] == Types[R])
        ++ClassDeg[R];
    });
    Degrees[R] = static_cast<unsigned>(Adj[R].size());
  }

  // Normalize cost to cost/degree (classic Chaitin heuristic); guard the
  // degree-zero case. The raw counts are kept so merge() can re-normalize
  // as degrees shift.
  for (Reg R = 0; R != N; ++R)
    Costs[R] = Degrees[R] ? RawCosts[R] / Degrees[R] : RawCosts[R];
}

void InterferenceGraph::merge(Reg A, Reg B, double CopyWeight) {
  // B's neighbors become A's. A shared neighbor loses B and keeps A —
  // the merged node counts once — while a B-only neighbor swaps B for A
  // at unchanged degree. Types[A] == Types[B] by precondition, so the
  // class-degree bookkeeping mirrors the plain degrees.
  for (Reg Nb : Adj[B]) {
    if (!Live[Nb] || Nb == A)
      continue;
    Matrix[Nb].reset(B);
    if (Matrix[Nb].test(A)) {
      --Degrees[Nb];
      if (Types[Nb] == Types[B])
        --ClassDeg[Nb];
      Costs[Nb] = Degrees[Nb] ? RawCosts[Nb] / Degrees[Nb] : RawCosts[Nb];
    } else {
      Matrix[Nb].set(A);
      Matrix[A].set(Nb);
      Adj[Nb].push_back(A);
    }
  }
  Matrix[A].reset(B);
  Live[B] = false;
  // The combined live range spills as one unit: pool the raw weighted
  // counts — minus the deleted copy's def and use — then re-normalize
  // against the merged degree below.
  RawCosts[A] += RawCosts[B] - 2 * CopyWeight;
  // Recompact A's adjacency from its final row (stale B entries and any
  // dead nodes drop out here; neighbors keep lazy Live checks instead).
  Adj[A].clear();
  ClassDeg[A] = 0;
  Matrix[A].forEach([&](size_t Other) {
    if (!Live[Other])
      return;
    Adj[A].push_back(static_cast<Reg>(Other));
    if (Types[Other] == Types[A])
      ++ClassDeg[A];
  });
  Degrees[A] = static_cast<unsigned>(Adj[A].size());
  Costs[A] = Degrees[A] ? RawCosts[A] / Degrees[A] : RawCosts[A];
}
