//===- regalloc/Liverange.cpp ---------------------------------------------===//

#include "regalloc/Liverange.h"

#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"

#include <cmath>

using namespace rpcc;

void InterferenceGraph::addEdge(Reg A, Reg B) {
  if (A == B || Matrix[A].test(B))
    return;
  Matrix[A].set(B);
  Matrix[B].set(A);
  Adj[A].push_back(B);
  Adj[B].push_back(A);
  ++Degrees[A];
  ++Degrees[B];
}

InterferenceGraph::InterferenceGraph(const Function &F)
    : N(F.numRegs()), Matrix(N, DenseBitSet(N)), Adj(N), Degrees(N, 0),
      Live(N, false), Costs(N, 0.0) {
  Liveness LV(F);
  LoopInfo LI(F);

  for (Reg P : F.paramRegs())
    Live[P] = true;

  for (const auto &B : F.blocks()) {
    // Spill-cost weight grows with loop depth.
    int LoopIdx = LI.innermostLoop(B->id());
    unsigned Depth = LoopIdx < 0 ? 0 : LI.loop(LoopIdx).Depth;
    double Weight = std::pow(10.0, static_cast<double>(Depth));

    DenseBitSet LiveNow = LV.liveOut(B->id());
    // Walk backward building interferences.
    const auto &Insts = B->insts();
    for (size_t Idx = Insts.size(); Idx-- > 0;) {
      const Instruction &I = *Insts[Idx];
      if (I.hasResult()) {
        Live[I.Result] = true;
        Costs[I.Result] += Weight;
        if (I.Op == Opcode::Copy) {
          Copies.push_back(CopyEdge{I.Result, I.Ops[0]});
          // Chaitin's refinement: the copy source does not interfere with
          // the destination (they may share a register).
          LiveNow.reset(I.Ops[0]);
        }
        LiveNow.forEach([&](size_t Other) {
          addEdge(I.Result, static_cast<Reg>(Other));
        });
        LiveNow.reset(I.Result);
      }
      for (Reg U : I.Ops) {
        LiveNow.set(U);
        Live[U] = true;
        Costs[U] += Weight;
      }
    }
    // Parameters are defined at entry: they interfere with everything live
    // into the entry block.
    if (B->id() == 0) {
      const DenseBitSet &EntryIn = LV.liveIn(0);
      for (Reg P : F.paramRegs())
        EntryIn.forEach([&](size_t Other) {
          if (static_cast<Reg>(Other) != P)
            addEdge(P, static_cast<Reg>(Other));
        });
    }
  }

  // Normalize cost to cost/degree (classic Chaitin heuristic); guard the
  // degree-zero case.
  for (Reg R = 0; R != N; ++R)
    Costs[R] = Degrees[R] ? Costs[R] / Degrees[R] : Costs[R];
}
