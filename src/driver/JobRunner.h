//===- driver/JobRunner.h - Named, observable sandboxed jobs ----*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver-level face of support/Sandbox: a job with a name, an optional
/// sandbox (off = run inline in-process, the zero-overhead default), an
/// optional injected worker fault (the harness-level proof that the
/// classifier works end to end), and observability — every run can append a
/// JobRecord to a thread-safe JobLog (rendered into `--timing-json` as the
/// "jobs" array) and a category-"job" span to the trace emitter.
///
/// This is the execution discipline the ROADMAP's rpserved daemon needs:
/// every request becomes a named job whose worst case is a classified
/// record, never a dead process.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_DRIVER_JOBRUNNER_H
#define RPCC_DRIVER_JOBRUNNER_H

#include "support/Sandbox.h"

#include <mutex>
#include <string>
#include <vector>

namespace rpcc {

class TraceCollector;

/// Deliberate worker sabotage for end-to-end classifier proofs
/// (`rpfuzz --inject-worker-faults`, `rpcc --inject-cell-fault`). The fault
/// fires inside the sandboxed child, before the real job body runs.
enum class WorkerFault : uint8_t { None, Crash, Hang, Oom };

/// Stable name: "none", "crash", "hang", "oom".
const char *workerFaultName(WorkerFault F);

/// Parses a workerFaultName spelling; returns false on anything else.
bool parseWorkerFault(const std::string &Name, WorkerFault &Out);

/// The sandbox status each injected fault must classify as.
SandboxStatus expectedFaultStatus(WorkerFault F);

/// One finished job, as recorded in the JobLog.
struct JobRecord {
  std::string Name;
  SandboxStatus Status = SandboxStatus::Ok;
  int Signal = 0;
  double WallMillis = 0;
  unsigned Attempts = 1;
};

/// Thread-safe collector of job outcomes, shared by every worker of a run.
/// Rendering sorts by name, so the JSON is deterministic for any --jobs.
class JobLog {
public:
  void add(JobRecord R);
  std::vector<JobRecord> records() const;

  /// Count of records whose status is not Ok and not Trap (Trap is a clean
  /// in-protocol failure; the job layer worked).
  size_t abnormal() const;

  /// `[{"name":..,"status":..,"signal":N,"wall_ms":..,"attempts":N}, ...]`
  /// sorted by name. Wall times are volatile; everything else is
  /// deterministic.
  std::string toJsonArray() const;

private:
  mutable std::mutex Mu;
  std::vector<JobRecord> Records;
};

struct JobOptions {
  /// Shown in logs, the JobLog, and trace spans.
  std::string Name;
  /// Fork a child; off runs the job inline (no isolation, no overhead).
  bool Sandbox = false;
  SandboxLimits Limits;
  unsigned MaxAttempts = 3;
  /// Sabotage executed in the child before the job body; requires Sandbox.
  WorkerFault Inject = WorkerFault::None;
  JobLog *Log = nullptr;
  TraceCollector *Trace = nullptr;
  /// Test seam forwarded to SandboxOptions.
  std::function<int()> ForkFn;
};

/// Runs \p Job under \p Opts. Inline mode (Sandbox off) reports Ok/Trap from
/// the job's own verdict and can neither time out nor absorb a crash — the
/// sandbox is where the strong guarantees live.
SandboxResult runJob(const SandboxJob &Job, const JobOptions &Opts);

/// Aggregated process exit severity across many jobs, reflecting the worst
/// outcome seen: 5 crash > 7 oom > 6 timeout > 0. Tools fold their own
/// job-independent failure code (usually 1) in after. Documented in
/// docs/ROBUSTNESS.md and extending rpcc's historic 0-4 codes.
int jobExitSeverity(bool AnyCrash, bool AnyOom, bool AnyTimeout);

constexpr int ExitCodeCrashedChild = 5;
constexpr int ExitCodeTimedOutChild = 6;
constexpr int ExitCodeOomChild = 7;

} // namespace rpcc

#endif // RPCC_DRIVER_JOBRUNNER_H
