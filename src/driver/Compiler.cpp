//===- driver/Compiler.cpp ------------------------------------------------===//

#include "driver/Compiler.h"

#include "alias/ModRef.h"
#include "alias/PointsTo.h"
#include "analysis/CfgNormalize.h"
#include "frontend/Lowering.h"
#include "ir/Verifier.h"
#include "obs/Remark.h"
#include "obs/ResidualAudit.h"
#include "obs/Trace.h"
#include "opt/Cleanup.h"
#include "opt/CopyProp.h"
#include "opt/Dce.h"

using namespace rpcc;

namespace {

void normalizeAll(Module &M) {
  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    Function *F = M.function(static_cast<FuncId>(FI));
    if (!F->isBuiltin() && F->numBlocks())
      normalizeLoops(*F);
  }
}

} // namespace

namespace {

/// Stamps CompileOutput::Timing with the whole-pipeline wall time on every
/// exit path when timing collection is on.
struct PipelineClock {
  CompileOutput &Out;
  bool Enabled;
  double Start;
  PipelineClock(CompileOutput &Out, bool Enabled)
      : Out(Out), Enabled(Enabled), Start(Enabled ? timingNowMs() : 0) {}
  ~PipelineClock() {
    if (Enabled) {
      Out.Timing.CompileMillis = timingNowMs() - Start;
      Out.Timing.Compiles = 1;
    }
  }
};

} // namespace

CompileOutput rpcc::compileProgram(const std::string &Source,
                                   const CompilerConfig &Cfg) {
  CompileOutput Out;
  Out.M = std::make_unique<Module>();
  PipelineClock Clock(Out, Cfg.CollectTiming);

  // Wraps one pass: records wall time and static op counts before/after
  // when timing is on, adds a trace span when tracing is on, otherwise just
  // runs the pass.
  auto Timed = [&](const char *Name, auto &&Body) {
    if (!Cfg.CollectTiming && !Cfg.Trace) {
      Body();
      return;
    }
    uint64_t Before = Cfg.CollectTiming ? countStaticOps(*Out.M) : 0;
    double T0 = timingNowMs();
    Body();
    double T1 = timingNowMs();
    if (Cfg.CollectTiming)
      Out.Timing.addPass(Name, T1 - T0, Before, countStaticOps(*Out.M));
    if (Cfg.Trace) {
      std::vector<std::pair<std::string, std::string>> Args;
      if (!Cfg.TraceLabel.empty())
        Args.push_back({"job", Cfg.TraceLabel});
      Cfg.Trace->addSpan(Name, "pass", T0, T1 - T0, std::move(Args));
    }
  };

  bool Lowered = false;
  Timed("lower", [&] { Lowered = compileToIL(Source, *Out.M, Out.Errors); });
  if (!Lowered)
    return Out;
  Module &M = *Out.M;

  // Landing pads and dedicated exits, as the paper's CFG construction
  // guarantees.
  Timed("cfg-normalize", [&] { normalizeAll(M); });

  // Interprocedural analysis; encode results in tag sets and call
  // summaries, then strengthen opcodes up Table 1's hierarchy.
  if (Cfg.Analysis == AnalysisKind::PointsTo) {
    PointsToResult PT;
    Timed("points-to", [&] { PT = runPointsTo(M); });
    Timed("modref", [&] { runModRef(M, &PT); });
  } else {
    Timed("modref", [&] { runModRef(M); });
  }
  if (Cfg.PostAnalysisHook)
    Cfg.PostAnalysisHook(M);
  Timed("strengthen", [&] { Out.Stats.Strengthen = strengthenOpcodes(M); });

  // Register promotion happens "in the early phases of optimization".
  if (Cfg.ScalarPromotion)
    Timed("promote", [&] {
      Out.Stats.Promo = promoteScalars(M, Cfg.Promo, Cfg.Remarks);
    });

  if (Cfg.EnableOpts) {
    Timed("vn", [&] { Out.Stats.Vn = runValueNumbering(M); });
    Timed("pre", [&] { Out.Stats.Pre = runPre(M, Cfg.Remarks); });
    Timed("copy-prop", [&] { propagateCopies(M); });
    Timed("sccp", [&] { Out.Stats.Sccp = runSccp(M); });
    Timed("cleanup", [&] { runCleanup(M); });
    Timed("cfg-normalize", [&] { normalizeAll(M); });
    Timed("licm", [&] { Out.Stats.Licm = runLicm(M, Cfg.Remarks); });
  }

  // §3.3 pointer-based promotion runs after LICM has exposed invariant
  // base addresses.
  if (Cfg.PointerPromotion) {
    Timed("cfg-normalize", [&] { normalizeAll(M); });
    Timed("ptr-promote", [&] {
      Out.Stats.PtrPromo = promotePointers(M, Cfg.Remarks);
    });
  }

  if (Cfg.EnableOpts)
    Timed("dce", [&] { Out.Stats.DceRemoved = runDce(M); });

  if (Cfg.RegisterAllocation) {
    RegAllocOptions RA;
    RA.NumRegisters = Cfg.NumRegisters;
    RA.GeorgeCoalescing = !Cfg.ClassicAllocator;
    RA.Rematerialization = !Cfg.ClassicAllocator;
    Timed("regalloc", [&] { Out.Stats.RegAlloc = allocateRegisters(M, RA); });
  }

  Timed("cleanup", [&] { runCleanup(M); });

  bool Verified = false;
  std::string VerifyErr;
  Timed("verify", [&] { Verified = verifyModule(M, VerifyErr); });
  if (!Verified) {
    Out.Errors = "internal error: pipeline produced invalid IL:\n" + VerifyErr;
    return Out;
  }

  // Residual audit on the final IL: every surviving in-loop memory op gets
  // a remark with a concrete reason code, so dynamic profiles always join.
  if (Cfg.Remarks && Cfg.ResidualAudit)
    Timed("residual-audit", [&] {
      ResidualAuditOptions AO;
      AO.ScalarPromotion = Cfg.ScalarPromotion;
      AO.PointerPromotion = Cfg.PointerPromotion;
      AO.PromotionBudget = Cfg.Promo.MaxPromotedPerLoop != 0;
      auditResidualMemOps(M, AO, *Cfg.Remarks);
    });

  Out.Ok = true;
  return Out;
}

ExecResult rpcc::compileAndRun(const std::string &Source,
                               const CompilerConfig &Cfg,
                               const InterpOptions &IOpts) {
  CompileOutput Out = compileProgram(Source, Cfg);
  if (!Out.Ok) {
    ExecResult R;
    R.Error = Out.Errors;
    return R;
  }
  return interpret(*Out.M, IOpts);
}
