//===- driver/Compiler.cpp ------------------------------------------------===//

#include "driver/Compiler.h"

#include "alias/ModRef.h"
#include "alias/PointsTo.h"
#include "analysis/CfgNormalize.h"
#include "frontend/Lowering.h"
#include "ir/Verifier.h"
#include "obs/Remark.h"
#include "obs/ResidualAudit.h"
#include "obs/Trace.h"
#include "opt/Cleanup.h"
#include "opt/CopyProp.h"
#include "opt/Dce.h"

using namespace rpcc;

namespace {

void normalizeAll(Module &M) {
  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    Function *F = M.function(static_cast<FuncId>(FI));
    if (!F->isBuiltin() && F->numBlocks())
      normalizeLoops(*F);
  }
}

} // namespace

namespace {

/// Stamps CompileOutput::Timing with the whole-pipeline wall time on every
/// exit path when timing collection is on.
struct PipelineClock {
  CompileOutput &Out;
  bool Enabled;
  double Start;
  PipelineClock(CompileOutput &Out, bool Enabled)
      : Out(Out), Enabled(Enabled), Start(Enabled ? timingNowMs() : 0) {}
  ~PipelineClock() {
    if (Enabled) {
      Out.Timing.CompileMillis = timingNowMs() - Start;
      Out.Timing.Compiles = 1;
    }
  }
};

/// Wraps one pass: records wall time and static op counts before/after when
/// a timing report is attached, adds a trace span when tracing is on,
/// otherwise just runs the pass. Shared by all three pipeline stages so the
/// staged and in-place paths observe identically.
struct PassRunner {
  Module &M;
  TimingReport *Timing; ///< null when not collecting
  TraceCollector *Trace;
  std::string Label;

  template <typename BodyT> void run(const char *Name, BodyT &&Body) {
    if (!Timing && !Trace) {
      Body();
      return;
    }
    uint64_t Before = Timing ? countStaticOps(M) : 0;
    double T0 = timingNowMs();
    Body();
    double T1 = timingNowMs();
    if (Timing)
      Timing->addPass(Name, T1 - T0, Before, countStaticOps(M));
    if (Trace) {
      std::vector<std::pair<std::string, std::string>> Args;
      if (!Label.empty())
        Args.push_back({"job", Label});
      Trace->addSpan(Name, "pass", T0, T1 - T0, std::move(Args));
    }
  }
};

/// Stage 1 body: lowering plus the landing-pad/dedicated-exit CFG shape the
/// paper's CFG construction guarantees.
bool frontendInto(const std::string &Source, Module &M, std::string &Errors,
                  PassRunner &R) {
  bool Lowered = false;
  R.run("lower", [&] { Lowered = compileToIL(Source, M, Errors); });
  if (!Lowered)
    return false;
  R.run("cfg-normalize", [&] { normalizeAll(M); });
  return true;
}

/// Stage 2 body: interprocedural analysis; encodes results in tag sets and
/// call summaries for the suffix to consume.
void analyzeInto(Module &M, AnalysisKind Kind, PassRunner &R) {
  if (Kind == AnalysisKind::PointsTo) {
    PointsToResult PT;
    R.run("points-to", [&] { PT = runPointsTo(M); });
    R.run("modref", [&] { runModRef(M, &PT); });
  } else {
    R.run("modref", [&] { runModRef(M); });
  }
}

/// Stage 3 body: everything configuration-dependent, from the fuzzer's
/// analysis-widening hook through verification and the residual audit.
/// Sets Out.Ok/Out.Errors; Out.M must already alias M.
void suffixInto(Module &M, CompileOutput &Out, const CompilerConfig &Cfg,
                PassRunner &R) {
  if (Cfg.PostAnalysisHook)
    Cfg.PostAnalysisHook(M);
  R.run("strengthen", [&] { Out.Stats.Strengthen = strengthenOpcodes(M); });

  // Register promotion happens "in the early phases of optimization".
  if (Cfg.ScalarPromotion)
    R.run("promote", [&] {
      Out.Stats.Promo = promoteScalars(M, Cfg.Promo, Cfg.Remarks);
    });

  if (Cfg.EnableOpts) {
    R.run("vn", [&] { Out.Stats.Vn = runValueNumbering(M); });
    R.run("pre", [&] { Out.Stats.Pre = runPre(M, Cfg.Remarks); });
    R.run("copy-prop", [&] { propagateCopies(M); });
    R.run("sccp", [&] { Out.Stats.Sccp = runSccp(M); });
    R.run("cleanup", [&] { runCleanup(M); });
    R.run("cfg-normalize", [&] { normalizeAll(M); });
    R.run("licm", [&] { Out.Stats.Licm = runLicm(M, Cfg.Remarks); });
  }

  // §3.3 pointer-based promotion runs after LICM has exposed invariant
  // base addresses.
  if (Cfg.PointerPromotion) {
    R.run("cfg-normalize", [&] { normalizeAll(M); });
    R.run("ptr-promote", [&] {
      Out.Stats.PtrPromo = promotePointers(M, Cfg.Remarks);
    });
  }

  if (Cfg.EnableOpts)
    R.run("dce", [&] { Out.Stats.DceRemoved = runDce(M); });

  if (Cfg.RegisterAllocation) {
    RegAllocOptions RA;
    RA.NumRegisters = Cfg.NumRegisters;
    RA.GeorgeCoalescing = !Cfg.ClassicAllocator;
    RA.Rematerialization = !Cfg.ClassicAllocator;
    R.run("regalloc", [&] { Out.Stats.RegAlloc = allocateRegisters(M, RA); });
  }

  R.run("cleanup", [&] { runCleanup(M); });

  bool Verified = false;
  std::string VerifyErr;
  R.run("verify", [&] { Verified = verifyModule(M, VerifyErr); });
  if (!Verified) {
    Out.Errors = "internal error: pipeline produced invalid IL:\n" + VerifyErr;
    return;
  }

  // Residual audit on the final IL: every surviving in-loop memory op gets
  // a remark with a concrete reason code, so dynamic profiles always join.
  if (Cfg.Remarks && Cfg.ResidualAudit)
    R.run("residual-audit", [&] {
      ResidualAuditOptions AO;
      AO.ScalarPromotion = Cfg.ScalarPromotion;
      AO.PointerPromotion = Cfg.PointerPromotion;
      AO.PromotionBudget = Cfg.Promo.MaxPromotedPerLoop != 0;
      auditResidualMemOps(M, AO, *Cfg.Remarks);
    });

  Out.Ok = true;
}

} // namespace

FrontendArtifact rpcc::runFrontend(const std::string &Source,
                                   const StageOptions &Opts) {
  FrontendArtifact FA;
  FA.M = std::make_unique<Module>();
  double T0 = timingNowMs();
  PassRunner R{*FA.M, Opts.CollectTiming ? &FA.Timing : nullptr, Opts.Trace,
               Opts.TraceLabel};
  FA.Ok = frontendInto(Source, *FA.M, FA.Errors, R);
  FA.WallMillis = timingNowMs() - T0;
  return FA;
}

AnalyzedModule rpcc::analyzeFrontend(const FrontendArtifact &FA,
                                     AnalysisKind Kind,
                                     const StageOptions &Opts) {
  AnalyzedModule AM;
  AM.Analysis = Kind;
  AM.M = FA.M ? FA.M->clone() : std::make_unique<Module>();
  if (!FA.Ok) {
    AM.Errors = FA.Errors;
    return AM;
  }
  double T0 = timingNowMs();
  PassRunner R{*AM.M, Opts.CollectTiming ? &AM.Timing : nullptr, Opts.Trace,
               Opts.TraceLabel};
  analyzeInto(*AM.M, Kind, R);
  AM.WallMillis = timingNowMs() - T0;
  AM.Ok = true;
  return AM;
}

CompileOutput rpcc::compileSuffix(const AnalyzedModule &AM,
                                  const CompilerConfig &Cfg) {
  CompileOutput Out;
  PipelineClock Clock(Out, Cfg.CollectTiming);
  Out.M = AM.M ? AM.M->clone() : std::make_unique<Module>();
  if (!AM.Ok) {
    Out.Errors = AM.Errors;
    return Out;
  }
  assert(Cfg.Analysis == AM.Analysis &&
         "suffix config disagrees with the analysis baked into the module");
  PassRunner R{*Out.M, Cfg.CollectTiming ? &Out.Timing : nullptr, Cfg.Trace,
               Cfg.TraceLabel};
  double T0 = Cfg.CollectTiming ? timingNowMs() : 0;
  suffixInto(*Out.M, Out, Cfg, R);
  if (Cfg.CollectTiming)
    Out.Timing.SuffixMillis = timingNowMs() - T0;
  return Out;
}

CompileOutput rpcc::compileProgram(const std::string &Source,
                                   const CompilerConfig &Cfg) {
  CompileOutput Out;
  Out.M = std::make_unique<Module>();
  PipelineClock Clock(Out, Cfg.CollectTiming);
  PassRunner R{*Out.M, Cfg.CollectTiming ? &Out.Timing : nullptr, Cfg.Trace,
               Cfg.TraceLabel};

  double T0 = Cfg.CollectTiming ? timingNowMs() : 0;
  if (!frontendInto(Source, *Out.M, Out.Errors, R))
    return Out;
  analyzeInto(*Out.M, Cfg.Analysis, R);
  double T1 = Cfg.CollectTiming ? timingNowMs() : 0;
  suffixInto(*Out.M, Out, Cfg, R);
  if (Cfg.CollectTiming) {
    Out.Timing.FrontendMillis = T1 - T0;
    Out.Timing.SuffixMillis = timingNowMs() - T1;
  }
  return Out;
}

ExecResult rpcc::compileAndRun(const std::string &Source,
                               const CompilerConfig &Cfg,
                               const InterpOptions &IOpts) {
  CompileOutput Out = compileProgram(Source, Cfg);
  if (!Out.Ok) {
    ExecResult R;
    R.Error = Out.Errors;
    return R;
  }
  return interpret(*Out.M, IOpts);
}
