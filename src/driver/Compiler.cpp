//===- driver/Compiler.cpp ------------------------------------------------===//

#include "driver/Compiler.h"

#include "alias/ModRef.h"
#include "alias/PointsTo.h"
#include "analysis/CfgNormalize.h"
#include "frontend/Lowering.h"
#include "ir/Verifier.h"
#include "opt/Cleanup.h"
#include "opt/CopyProp.h"
#include "opt/Dce.h"

using namespace rpcc;

namespace {

void normalizeAll(Module &M) {
  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    Function *F = M.function(static_cast<FuncId>(FI));
    if (!F->isBuiltin() && F->numBlocks())
      normalizeLoops(*F);
  }
}

} // namespace

CompileOutput rpcc::compileProgram(const std::string &Source,
                                   const CompilerConfig &Cfg) {
  CompileOutput Out;
  Out.M = std::make_unique<Module>();
  if (!compileToIL(Source, *Out.M, Out.Errors))
    return Out;
  Module &M = *Out.M;

  // Landing pads and dedicated exits, as the paper's CFG construction
  // guarantees.
  normalizeAll(M);

  // Interprocedural analysis; encode results in tag sets and call
  // summaries, then strengthen opcodes up Table 1's hierarchy.
  if (Cfg.Analysis == AnalysisKind::PointsTo) {
    PointsToResult PT = runPointsTo(M);
    runModRef(M, &PT);
  } else {
    runModRef(M);
  }
  if (Cfg.PostAnalysisHook)
    Cfg.PostAnalysisHook(M);
  Out.Stats.Strengthen = strengthenOpcodes(M);

  // Register promotion happens "in the early phases of optimization".
  if (Cfg.ScalarPromotion)
    Out.Stats.Promo = promoteScalars(M, Cfg.Promo);

  if (Cfg.EnableOpts) {
    Out.Stats.Vn = runValueNumbering(M);
    Out.Stats.Pre = runPre(M);
    propagateCopies(M);
    Out.Stats.Sccp = runSccp(M);
    runCleanup(M);
    normalizeAll(M);
    Out.Stats.Licm = runLicm(M);
  }

  // §3.3 pointer-based promotion runs after LICM has exposed invariant
  // base addresses.
  if (Cfg.PointerPromotion) {
    normalizeAll(M);
    Out.Stats.PtrPromo = promotePointers(M);
  }

  if (Cfg.EnableOpts)
    Out.Stats.DceRemoved = runDce(M);

  if (Cfg.RegisterAllocation) {
    RegAllocOptions RA;
    RA.NumRegisters = Cfg.NumRegisters;
    RA.GeorgeCoalescing = !Cfg.ClassicAllocator;
    RA.Rematerialization = !Cfg.ClassicAllocator;
    Out.Stats.RegAlloc = allocateRegisters(M, RA);
  }

  runCleanup(M);

  std::string VerifyErr;
  if (!verifyModule(M, VerifyErr)) {
    Out.Errors = "internal error: pipeline produced invalid IL:\n" + VerifyErr;
    return Out;
  }
  Out.Ok = true;
  return Out;
}

ExecResult rpcc::compileAndRun(const std::string &Source,
                               const CompilerConfig &Cfg,
                               const InterpOptions &IOpts) {
  CompileOutput Out = compileProgram(Source, Cfg);
  if (!Out.Ok) {
    ExecResult R;
    R.Error = Out.Errors;
    return R;
  }
  return interpret(*Out.M, IOpts);
}
