//===- driver/SuiteRunner.cpp ---------------------------------------------===//

#include "driver/SuiteRunner.h"

#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace rpcc;

#ifndef RPCC_PROGRAMS_DIR
#define RPCC_PROGRAMS_DIR "bench/programs"
#endif

ProgramResults rpcc::runAllConfigs(const std::string &Name,
                                   const std::string &Source,
                                   const SuiteOptions &Opts) {
  ProgramResults PR;
  PR.Name = Name;
  for (int A = 0; A != 2; ++A) {
    for (int P = 0; P != 2; ++P) {
      CompilerConfig Cfg;
      Cfg.Analysis = A == 0 ? AnalysisKind::ModRef : AnalysisKind::PointsTo;
      Cfg.ScalarPromotion = P == 1;
      Cfg.PointerPromotion = P == 1 && Opts.PointerPromotion;
      Cfg.NumRegisters = Opts.NumRegisters;
      ExecResult R = compileAndRun(Source, Cfg, Opts.Interp);
      ConfigCounts &C = PR.R[A][P];
      C.Ok = R.Ok;
      C.Error = R.Error;
      C.Total = R.Counters.Total;
      C.Loads = R.Counters.Loads;
      C.Stores = R.Counters.Stores;
      C.ExitCode = R.ExitCode;
      C.Output = R.Output;
    }
  }

  // Promotion and alias analysis may only change counts, never behavior.
  const ConfigCounts &Base = PR.R[0][0];
  for (int A = 0; A != 2; ++A) {
    for (int P = 0; P != 2; ++P) {
      if (A == 0 && P == 0)
        continue;
      ConfigCounts &C = PR.R[A][P];
      if (!Base.Ok || !C.Ok)
        continue;
      if (C.ExitCode != Base.ExitCode || C.Output != Base.Output) {
        C.Diverged = true;
        C.Ok = false;
        std::ostringstream OS;
        OS << "behavior diverged from modref/no-promotion baseline: ";
        if (C.ExitCode != Base.ExitCode)
          OS << "exit code " << C.ExitCode << " vs " << Base.ExitCode;
        else
          OS << "stdout differs (" << C.Output.size() << " vs "
             << Base.Output.size() << " bytes)";
        C.Error = OS.str();
      }
    }
  }
  return PR;
}

std::string rpcc::formatPaperTable(const std::vector<ProgramResults> &Programs,
                                   Metric Which) {
  auto Pick = [&](const ConfigCounts &C) {
    switch (Which) {
    case Metric::TotalOps:
      return C.Total;
    case Metric::Stores:
      return C.Stores;
    case Metric::Loads:
      return C.Loads;
    }
    return uint64_t(0);
  };

  TextTable T({"program", "analysis", "without", "with", "difference",
               "% removed"});
  for (const ProgramResults &PR : Programs) {
    for (int A = 0; A != 2; ++A) {
      const ConfigCounts &Without = PR.R[A][0];
      const ConfigCounts &With = PR.R[A][1];
      std::string Analysis = A == 0 ? "modref" : "pointer";
      if (!Without.Ok || !With.Ok) {
        const char *Cell =
            Without.Diverged || With.Diverged ? "diverged" : "error";
        T.addRow({A == 0 ? PR.Name : "", Analysis, Cell, Cell, "-", "-"});
        continue;
      }
      uint64_t W0 = Pick(Without), W1 = Pick(With);
      int64_t Diff = static_cast<int64_t>(W0) - static_cast<int64_t>(W1);
      double Pct = W0 ? 100.0 * static_cast<double>(Diff) /
                            static_cast<double>(W0)
                      : 0.0;
      T.addRow({A == 0 ? PR.Name : "", Analysis, withCommas(W0),
                withCommas(W1), withCommasSigned(Diff), fixed(Pct, 2)});
    }
  }
  return T.render();
}

std::string rpcc::loadBenchProgram(const std::string &Name) {
  std::string Path = std::string(RPCC_PROGRAMS_DIR) + "/" + Name + ".c";
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open benchmark program %s\n",
                 Path.c_str());
    std::exit(1);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

const std::vector<std::string> &rpcc::benchProgramNames() {
  static const std::vector<std::string> Names = {
      "tsp",    "mlink",     "fft",   "clean", "sim",
      "dhrystone", "water",  "indent", "allroots", "bc",
      "go",     "bison",     "gzip_enc", "gzip_dec"};
  return Names;
}
