//===- driver/SuiteRunner.cpp ---------------------------------------------===//

#include "driver/SuiteRunner.h"

#include "driver/CompileCache.h"
#include "obs/Remark.h"
#include "obs/TagProfile.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace rpcc;

#ifndef RPCC_PROGRAMS_DIR
#define RPCC_PROGRAMS_DIR "bench/programs"
#endif

namespace {

/// Compiles and runs one matrix cell. The cell owns its Module (forked from
/// \p Cache when caching, built from source when not) and RemarkEngine, so
/// any number of cells may run on different threads concurrently.
ConfigCounts runOneCell(const std::string &Name, const std::string &Source,
                        int A, int P, const SuiteOptions &Opts,
                        CompileCache *Cache, TimingReport &Timing) {
  CompilerConfig Cfg;
  Cfg.Analysis = A == 0 ? AnalysisKind::ModRef : AnalysisKind::PointsTo;
  Cfg.ScalarPromotion = P == 1;
  Cfg.PointerPromotion = P == 1 && Opts.PointerPromotion;
  Cfg.NumRegisters = Opts.NumRegisters;
  Cfg.CollectTiming = Opts.CollectTiming;
  Cfg.Trace = Opts.Trace;
  if (Opts.Trace)
    Cfg.TraceLabel = Name + "/" + suiteCellName(A, P);

  // The explain report joins the profile against remarks, so the profiled
  // cell needs an engine even when the caller only asked for --profile-tags.
  bool ProfileThisCell = Opts.ProfileTags && A == 0 && P == 1;
  RemarkEngine Re;
  if (Opts.Remarks || ProfileThisCell)
    Cfg.Remarks = &Re;

  double CellT0 = Opts.Trace ? timingNowMs() : 0;
  ConfigCounts C;
  CompileOutput Out =
      Cache ? Cache->compile(Name, Source, Cfg) : compileProgram(Source, Cfg);
  if (!Out.Ok) {
    C.Error = Out.Errors;
    Timing = std::move(Out.Timing);
    if (Opts.Trace)
      Opts.Trace->addSpan(Cfg.TraceLabel, "cell", CellT0,
                          timingNowMs() - CellT0);
    return C;
  }
  ProfileMeta Meta;
  InterpOptions IOpts = Opts.Interp;
  if (ProfileThisCell) {
    Meta = ProfileMeta::build(*Out.M);
    IOpts.Profile = &Meta;
  }
  double T0 = Opts.CollectTiming ? timingNowMs() : 0;
  ExecResult R = interpret(*Out.M, IOpts);
  if (Opts.CollectTiming) {
    Timing = std::move(Out.Timing);
    Timing.InterpMillis = timingNowMs() - T0;
    Timing.InterpSteps = R.Counters.Total;
    Timing.Engine = interpEngineName(IOpts.Engine);
  }
  C.Ok = R.Ok;
  C.Error = R.Error;
  C.Total = R.Counters.Total;
  C.Loads = R.Counters.Loads;
  C.Stores = R.Counters.Stores;
  C.ExitCode = R.ExitCode;
  C.Output = R.Output;

  if (Cfg.Remarks) {
    C.RemarksPromoted = Re.count(RemarkKind::Promoted, Opts.RemarkPass);
    C.RemarksMissed = Re.count(RemarkKind::Missed, Opts.RemarkPass);
    C.RemarksHoisted = Re.count(RemarkKind::Hoisted, Opts.RemarkPass);
    C.RemarksResidual = Re.count(RemarkKind::Residual, Opts.RemarkPass);
    if (Opts.Remarks) {
      C.RemarksText = Re.toText(Opts.RemarkPass);
      C.RemarksJson = Re.toJsonLines({{"program", Name},
                                      {"cell", suiteCellName(A, P)}});
    }
  }
  if (ProfileThisCell && C.Ok) {
    C.HotTags = formatHotTagTable(*Out.M, Meta, R.Profile);
    C.Explain =
        formatExplainReport(buildExplainReport(*Out.M, Meta, R.Profile, Re));
    C.ProfileJson = profileToJson(*Out.M, Meta, R.Profile);
  }
  if (Opts.Trace)
    Opts.Trace->addSpan(Cfg.TraceLabel, "cell", CellT0,
                        timingNowMs() - CellT0);
  return C;
}

/// Cross-checks the three non-baseline cells against the modref/no-promotion
/// cell: promotion and alias analysis may only change counts, never
/// behavior. When the baseline itself failed, surviving cells are flagged as
/// having no baseline instead of silently skipping the check — their counts
/// must not reach the paper tables as if they were comparable.
void applyBaselineChecks(ProgramResults &PR) {
  const ConfigCounts &Base = PR.R[0][0];
  for (int A = 0; A != 2; ++A) {
    for (int P = 0; P != 2; ++P) {
      if (A == 0 && P == 0)
        continue;
      ConfigCounts &C = PR.R[A][P];
      if (!C.Ok)
        continue;
      if (!Base.Ok) {
        C.BaselineFailed = true;
        C.Ok = false;
        C.Error = "modref/no-promotion baseline failed (" + Base.Error +
                  "); counts are not comparable";
        continue;
      }
      if (C.ExitCode != Base.ExitCode || C.Output != Base.Output) {
        C.Diverged = true;
        C.Ok = false;
        std::ostringstream OS;
        OS << "behavior diverged from modref/no-promotion baseline: ";
        if (C.ExitCode != Base.ExitCode)
          OS << "exit code " << C.ExitCode << " vs " << Base.ExitCode;
        else
          OS << "stdout differs (" << C.Output.size() << " vs "
             << Base.Output.size() << " bytes)";
        C.Error = OS.str();
      }
    }
  }
}

/// Merges the four cells' timing into PR.Timing in fixed matrix order, so
/// the aggregate is identical no matter which threads ran which cell.
void mergeCellTimings(ProgramResults &PR, const TimingReport Cells[4]) {
  for (int Cell = 0; Cell != 4; ++Cell)
    PR.Timing.merge(Cells[Cell]);
}

} // namespace

ProgramResults rpcc::runAllConfigs(const std::string &Name,
                                   const std::string &Source,
                                   const SuiteOptions &Opts) {
  ProgramResults PR;
  PR.Name = Name;
  std::unique_ptr<CompileCache> Cache;
  if (Opts.UseCompileCache)
    Cache = std::make_unique<CompileCache>(
        CompileCache::Options{Opts.CollectTiming, Opts.Trace});
  TimingReport CellTiming[4];
  parallelFor(Opts.Jobs, 4, [&](size_t Cell) {
    int A = static_cast<int>(Cell) / 2, P = static_cast<int>(Cell) % 2;
    PR.R[A][P] =
        runOneCell(Name, Source, A, P, Opts, Cache.get(), CellTiming[Cell]);
  });
  if (Opts.CollectTiming) {
    mergeCellTimings(PR, CellTiming);
    if (Cache)
      PR.Timing.merge(Cache->sharedTiming(Name));
  }
  applyBaselineChecks(PR);
  return PR;
}

std::vector<ProgramResults> rpcc::runSuite(const std::vector<std::string> &Names,
                                           const SuiteOptions &Opts) {
  std::vector<ProgramResults> All(Names.size());
  std::vector<std::string> Sources(Names.size());
  for (size_t I = 0; I != Names.size(); ++I) {
    All[I].Name = Names[I];
    Sources[I] = loadBenchProgram(Names[I]);
  }

  // One cache for the whole suite: each program's prefix compiles once and
  // its four cells fork it, whichever workers get there first.
  std::unique_ptr<CompileCache> Cache;
  if (Opts.UseCompileCache)
    Cache = std::make_unique<CompileCache>(
        CompileCache::Options{Opts.CollectTiming, Opts.Trace});

  // One job per (program, cell): 56 for the paper's 14x4 matrix. Finer
  // granularity than per-program keeps all workers busy even when one
  // program (go, bison) dominates the wall clock.
  std::vector<TimingReport> CellTiming(Names.size() * 4);
  parallelFor(Opts.Jobs, Names.size() * 4, [&](size_t Job) {
    size_t I = Job / 4;
    int A = static_cast<int>(Job % 4) / 2, P = static_cast<int>(Job % 2);
    All[I].R[A][P] = runOneCell(Names[I], Sources[I], A, P, Opts, Cache.get(),
                                CellTiming[Job]);
  });

  for (size_t I = 0; I != All.size(); ++I) {
    if (Opts.CollectTiming) {
      mergeCellTimings(All[I], &CellTiming[I * 4]);
      if (Cache)
        All[I].Timing.merge(Cache->sharedTiming(Names[I]));
    }
    applyBaselineChecks(All[I]);
  }
  return All;
}

std::string rpcc::formatPaperTable(const std::vector<ProgramResults> &Programs,
                                   Metric Which) {
  auto Pick = [&](const ConfigCounts &C) {
    switch (Which) {
    case Metric::TotalOps:
      return C.Total;
    case Metric::Stores:
      return C.Stores;
    case Metric::Loads:
      return C.Loads;
    }
    return uint64_t(0);
  };

  TextTable T({"program", "analysis", "without", "with", "difference",
               "% removed"});
  for (const ProgramResults &PR : Programs) {
    for (int A = 0; A != 2; ++A) {
      const ConfigCounts &Without = PR.R[A][0];
      const ConfigCounts &With = PR.R[A][1];
      std::string Analysis = A == 0 ? "modref" : "pointer";
      if (!Without.Ok || !With.Ok) {
        const char *Cell = "error";
        if (Without.Diverged || With.Diverged)
          Cell = "diverged";
        else if (Without.BaselineFailed || With.BaselineFailed)
          Cell = "baseline failed";
        T.addRow({A == 0 ? PR.Name : "", Analysis, Cell, Cell, "-", "-"});
        continue;
      }
      uint64_t W0 = Pick(Without), W1 = Pick(With);
      int64_t Diff = static_cast<int64_t>(W0) - static_cast<int64_t>(W1);
      double Pct = W0 ? 100.0 * static_cast<double>(Diff) /
                            static_cast<double>(W0)
                      : 0.0;
      T.addRow({A == 0 ? PR.Name : "", Analysis, withCommas(W0),
                withCommas(W1), withCommasSigned(Diff), fixed(Pct, 2)});
    }
  }
  return T.render();
}

std::string rpcc::suiteCellName(int Analysis, int Promotion) {
  return std::string(Analysis == 0 ? "modref" : "pointer") +
         (Promotion ? "/with" : "/without");
}

std::string rpcc::formatSuiteRemarkSummary(
    const std::vector<ProgramResults> &Programs) {
  TextTable T({"program", "cell", "promoted", "missed", "hoisted",
               "residual"});
  for (const ProgramResults &PR : Programs) {
    for (int A = 0; A != 2; ++A)
      for (int P = 0; P != 2; ++P) {
        const ConfigCounts &C = PR.R[A][P];
        T.addRow({A == 0 && P == 0 ? PR.Name : "", suiteCellName(A, P),
                  withCommas(C.RemarksPromoted), withCommas(C.RemarksMissed),
                  withCommas(C.RemarksHoisted),
                  withCommas(C.RemarksResidual)});
      }
  }
  return T.render();
}

std::string rpcc::loadBenchProgram(const std::string &Name) {
  std::string Path = std::string(RPCC_PROGRAMS_DIR) + "/" + Name + ".c";
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open benchmark program %s\n",
                 Path.c_str());
    std::exit(1);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

const std::vector<std::string> &rpcc::benchProgramNames() {
  static const std::vector<std::string> Names = {
      "tsp",    "mlink",     "fft",   "clean", "sim",
      "dhrystone", "water",  "indent", "allroots", "bc",
      "go",     "bison",     "gzip_enc", "gzip_dec"};
  return Names;
}
