//===- driver/SuiteRunner.cpp ---------------------------------------------===//

#include "driver/SuiteRunner.h"

#include "driver/CompileCache.h"
#include "obs/Metrics.h"
#include "obs/Remark.h"
#include "obs/TagProfile.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace rpcc;

#ifndef RPCC_PROGRAMS_DIR
#define RPCC_PROGRAMS_DIR "bench/programs"
#endif

namespace {

/// Compiles and runs one matrix cell. The cell owns its Module (forked from
/// \p Cache when caching, built from source when not) and RemarkEngine, so
/// any number of cells may run on different threads concurrently.
ConfigCounts runOneCell(const std::string &Name, const std::string &Source,
                        int A, int P, const SuiteOptions &Opts,
                        CompileCache *Cache, TimingReport &Timing) {
  CompilerConfig Cfg;
  Cfg.Analysis = A == 0 ? AnalysisKind::ModRef : AnalysisKind::PointsTo;
  Cfg.ScalarPromotion = P == 1;
  Cfg.PointerPromotion = P == 1 && Opts.PointerPromotion;
  Cfg.NumRegisters = Opts.NumRegisters;
  Cfg.CollectTiming = Opts.CollectTiming;
  Cfg.Trace = Opts.Trace;
  if (Opts.Trace)
    Cfg.TraceLabel = Name + "/" + suiteCellName(A, P);

  // The explain report joins the profile against remarks, so the profiled
  // cell needs an engine even when the caller only asked for --profile-tags.
  bool ProfileThisCell = Opts.ProfileTags && A == 0 && P == 1;
  RemarkEngine Re;
  if (Opts.Remarks || ProfileThisCell)
    Cfg.Remarks = &Re;

  double CellT0 = Opts.Trace ? timingNowMs() : 0;
  ConfigCounts C;
  CompileOutput Out =
      Cache ? Cache->compile(Name, Source, Cfg) : compileProgram(Source, Cfg);
  if (!Out.Ok) {
    C.Error = Out.Errors;
    Timing = std::move(Out.Timing);
    if (Opts.Trace)
      Opts.Trace->addSpan(Cfg.TraceLabel, "cell", CellT0,
                          timingNowMs() - CellT0);
    return C;
  }
  ProfileMeta Meta;
  InterpOptions IOpts = Opts.Interp;
  // --no-compile-cache is a whole-pipeline A/B switch: it bypasses the jit's
  // native-code cache along with the frontend compile cache, so a cached run
  // can be diffed against a every-stage-from-scratch run.
  IOpts.JitCodeCache = Opts.UseCompileCache;
  if (ProfileThisCell) {
    Meta = ProfileMeta::build(*Out.M);
    IOpts.Profile = &Meta;
  }
  double T0 = Opts.CollectTiming ? timingNowMs() : 0;
  ExecResult R = interpret(*Out.M, IOpts);
  if (Opts.CollectTiming) {
    Timing = std::move(Out.Timing);
    Timing.InterpMillis = timingNowMs() - T0;
    Timing.InterpSteps = R.Counters.Total;
    Timing.Engine = interpEngineName(IOpts.Engine);
  }
  C.Ok = R.Ok;
  C.Error = R.Error;
  C.Total = R.Counters.Total;
  C.Loads = R.Counters.Loads;
  C.Stores = R.Counters.Stores;
  C.ExitCode = R.ExitCode;
  C.Output = R.Output;

  if (Cfg.Remarks) {
    C.RemarksPromoted = Re.count(RemarkKind::Promoted, Opts.RemarkPass);
    C.RemarksMissed = Re.count(RemarkKind::Missed, Opts.RemarkPass);
    C.RemarksHoisted = Re.count(RemarkKind::Hoisted, Opts.RemarkPass);
    C.RemarksResidual = Re.count(RemarkKind::Residual, Opts.RemarkPass);
    if (Opts.Remarks) {
      C.RemarksText = Re.toText(Opts.RemarkPass);
      C.RemarksJson = Re.toJsonLines({{"program", Name},
                                      {"cell", suiteCellName(A, P)}});
    }
  }
  if (ProfileThisCell && C.Ok) {
    C.HotTags = formatHotTagTable(*Out.M, Meta, R.Profile);
    C.Explain =
        formatExplainReport(buildExplainReport(*Out.M, Meta, R.Profile, Re));
    C.ProfileJson = profileToJson(*Out.M, Meta, R.Profile);
  }
  if (Opts.Trace)
    Opts.Trace->addSpan(Cfg.TraceLabel, "cell", CellT0,
                        timingNowMs() - CellT0);
  return C;
}

// -- Sandbox plumbing --------------------------------------------------------

/// Flattens the child-computed half of ConfigCounts onto the result pipe.
/// Diverged/BaselineFailed stay parent-side (baseline checks run after all
/// cells finish), and TimingReport is not shipped: sandboxed cells do not
/// contribute per-pass timing.
std::string encodeCounts(const ConfigCounts &C) {
  PayloadWriter W;
  W.u8(C.Ok);
  W.str(C.Error);
  W.u64(C.Total);
  W.u64(C.Loads);
  W.u64(C.Stores);
  W.i64(C.ExitCode);
  W.str(C.Output);
  W.u64(C.RemarksPromoted);
  W.u64(C.RemarksMissed);
  W.u64(C.RemarksHoisted);
  W.u64(C.RemarksResidual);
  W.str(C.RemarksText);
  W.str(C.RemarksJson);
  W.str(C.HotTags);
  W.str(C.Explain);
  W.str(C.ProfileJson);
  return W.take();
}

bool decodeCounts(const std::string &Payload, ConfigCounts &C) {
  PayloadReader R(Payload);
  C.Ok = R.u8() != 0;
  C.Error = R.str();
  C.Total = R.u64();
  C.Loads = R.u64();
  C.Stores = R.u64();
  C.ExitCode = R.i64();
  C.Output = R.str();
  C.RemarksPromoted = R.u64();
  C.RemarksMissed = R.u64();
  C.RemarksHoisted = R.u64();
  C.RemarksResidual = R.u64();
  C.RemarksText = R.str();
  C.RemarksJson = R.str();
  C.HotTags = R.str();
  C.Explain = R.str();
  C.ProfileJson = R.str();
  return R.complete();
}

/// Parses SuiteOptions::InjectCellFault against this cell's key; returns the
/// fault to fire inside its child (None for every other cell or on a
/// malformed spec).
WorkerFault cellFault(const SuiteOptions &Opts, const std::string &Name,
                      int A, int P) {
  if (Opts.InjectCellFault.empty())
    return WorkerFault::None;
  size_t Colon = Opts.InjectCellFault.rfind(':');
  if (Colon == std::string::npos)
    return WorkerFault::None;
  if (Opts.InjectCellFault.substr(0, Colon) !=
      Name + "/" + suiteCellName(A, P))
    return WorkerFault::None;
  WorkerFault F = WorkerFault::None;
  parseWorkerFault(Opts.InjectCellFault.substr(Colon + 1), F);
  return F;
}

/// Cell dispatcher: inline execution when the sandbox is off (byte-for-byte
/// the historic path), otherwise the cell body runs in a forked child and
/// its ConfigCounts come back over the pipe. A child that crashes, hangs,
/// or OOMs becomes a classified error cell; the suite keeps going.
ConfigCounts runCell(const std::string &Name, const std::string &Source,
                     int A, int P, const SuiteOptions &Opts,
                     CompileCache *Cache, TimingReport &Timing) {
  // Parent-side progress tally for the heartbeat, covering the inline and
  // sandboxed paths alike (a dead child still finishes its cell).
  static Counter CellsDone = MetricsRegistry::global().counter(
      "suite.cells", {}, MetricStability::Stable, "ops",
      "Suite matrix cells executed.");
  CellsDone.inc();
  JobOptions JOpts;
  JOpts.Name = Name + "/" + suiteCellName(A, P);
  JOpts.Sandbox = Opts.Sandbox;
  JOpts.Limits = Opts.Limits;
  JOpts.Inject = cellFault(Opts, Name, A, P);
  JOpts.Log = Opts.Log;
  JOpts.Trace = Opts.Trace;

  // Inline mode is byte-for-byte the historic path: no job records, no
  // "job" trace spans, nothing the sandbox could perturb.
  if (!Opts.Sandbox)
    return runOneCell(Name, Source, A, P, Opts, Cache, Timing);

  // The child must not touch cross-thread state forked mid-flight: another
  // worker may hold the compile cache or trace mutex at fork time, and that
  // lock would never be released in the child. Each sandboxed cell compiles
  // standalone and traces nothing; the parent still emits the job span.
  SuiteOptions ChildOpts = Opts;
  ChildOpts.Trace = nullptr;
  ChildOpts.CollectTiming = false;
  SandboxResult R = runJob(
      [&](std::string &Payload) {
        TimingReport ChildTiming;
        Payload = encodeCounts(runOneCell(Name, Source, A, P, ChildOpts,
                                          /*Cache=*/nullptr, ChildTiming));
        return true;
      },
      JOpts);

  ConfigCounts C;
  if (R.ok()) {
    if (decodeCounts(R.Payload, C))
      return C;
    C = ConfigCounts();
    C.Child = SandboxStatus::InternalError;
    C.Error = "malformed sandbox payload";
    return C;
  }
  C.Child = R.Status;
  C.ChildSignal = R.Signal;
  C.Error = R.Error;
  return C;
}

/// Cross-checks the three non-baseline cells against the modref/no-promotion
/// cell: promotion and alias analysis may only change counts, never
/// behavior. When the baseline itself failed, surviving cells are flagged as
/// having no baseline instead of silently skipping the check — their counts
/// must not reach the paper tables as if they were comparable.
void applyBaselineChecks(ProgramResults &PR) {
  const ConfigCounts &Base = PR.R[0][0];
  for (int A = 0; A != 2; ++A) {
    for (int P = 0; P != 2; ++P) {
      if (A == 0 && P == 0)
        continue;
      ConfigCounts &C = PR.R[A][P];
      if (!C.Ok)
        continue;
      if (!Base.Ok) {
        C.BaselineFailed = true;
        C.Ok = false;
        C.Error = "modref/no-promotion baseline failed (" + Base.Error +
                  "); counts are not comparable";
        continue;
      }
      if (C.ExitCode != Base.ExitCode || C.Output != Base.Output) {
        C.Diverged = true;
        C.Ok = false;
        std::ostringstream OS;
        OS << "behavior diverged from modref/no-promotion baseline: ";
        if (C.ExitCode != Base.ExitCode)
          OS << "exit code " << C.ExitCode << " vs " << Base.ExitCode;
        else
          OS << "stdout differs (" << C.Output.size() << " vs "
             << Base.Output.size() << " bytes)";
        C.Error = OS.str();
      }
    }
  }
}

/// Merges the four cells' timing into PR.Timing in fixed matrix order, so
/// the aggregate is identical no matter which threads ran which cell.
void mergeCellTimings(ProgramResults &PR, const TimingReport Cells[4]) {
  for (int Cell = 0; Cell != 4; ++Cell)
    PR.Timing.merge(Cells[Cell]);
}

} // namespace

ProgramResults rpcc::runAllConfigs(const std::string &Name,
                                   const std::string &Source,
                                   const SuiteOptions &Opts) {
  ProgramResults PR;
  PR.Name = Name;
  std::unique_ptr<CompileCache> Cache;
  if (Opts.UseCompileCache)
    Cache = std::make_unique<CompileCache>(
        CompileCache::Options{Opts.CollectTiming, Opts.Trace});
  TimingReport CellTiming[4];
  parallelFor(Opts.Jobs, 4, [&](size_t Cell) {
    int A = static_cast<int>(Cell) / 2, P = static_cast<int>(Cell) % 2;
    PR.R[A][P] =
        runCell(Name, Source, A, P, Opts, Cache.get(), CellTiming[Cell]);
  });
  if (Opts.CollectTiming) {
    mergeCellTimings(PR, CellTiming);
    if (Cache)
      PR.Timing.merge(Cache->sharedTiming(Name));
  }
  applyBaselineChecks(PR);
  return PR;
}

std::vector<ProgramResults> rpcc::runSuite(const std::vector<std::string> &Names,
                                           const SuiteOptions &Opts) {
  std::vector<ProgramResults> All(Names.size());
  std::vector<std::string> Sources(Names.size());
  std::vector<bool> Loaded(Names.size(), false);
  for (size_t I = 0; I != Names.size(); ++I) {
    All[I].Name = Names[I];
    Status S = loadBenchProgram(Names[I], Sources[I]);
    Loaded[I] = !S.isError();
    // A missing program degrades to four error cells instead of killing the
    // whole suite: the other thirteen programs' figures still matter.
    if (S.isError())
      for (int A = 0; A != 2; ++A)
        for (int P = 0; P != 2; ++P)
          All[I].R[A][P].Error = S.message();
  }

  // One cache for the whole suite: each program's prefix compiles once and
  // its four cells fork it, whichever workers get there first.
  std::unique_ptr<CompileCache> Cache;
  if (Opts.UseCompileCache)
    Cache = std::make_unique<CompileCache>(
        CompileCache::Options{Opts.CollectTiming, Opts.Trace});

  // One job per (program, cell): 56 for the paper's 14x4 matrix. Finer
  // granularity than per-program keeps all workers busy even when one
  // program (go, bison) dominates the wall clock.
  std::vector<TimingReport> CellTiming(Names.size() * 4);
  parallelFor(Opts.Jobs, Names.size() * 4, [&](size_t Job) {
    size_t I = Job / 4;
    if (!Loaded[I])
      return;
    int A = static_cast<int>(Job % 4) / 2, P = static_cast<int>(Job % 2);
    All[I].R[A][P] = runCell(Names[I], Sources[I], A, P, Opts, Cache.get(),
                             CellTiming[Job]);
  });

  for (size_t I = 0; I != All.size(); ++I) {
    if (Opts.CollectTiming) {
      mergeCellTimings(All[I], &CellTiming[I * 4]);
      if (Cache)
        All[I].Timing.merge(Cache->sharedTiming(Names[I]));
    }
    applyBaselineChecks(All[I]);
  }
  return All;
}

std::string rpcc::formatPaperTable(const std::vector<ProgramResults> &Programs,
                                   Metric Which) {
  auto Pick = [&](const ConfigCounts &C) {
    switch (Which) {
    case Metric::TotalOps:
      return C.Total;
    case Metric::Stores:
      return C.Stores;
    case Metric::Loads:
      return C.Loads;
    }
    return uint64_t(0);
  };

  TextTable T({"program", "analysis", "without", "with", "difference",
               "% removed"});
  for (const ProgramResults &PR : Programs) {
    for (int A = 0; A != 2; ++A) {
      const ConfigCounts &Without = PR.R[A][0];
      const ConfigCounts &With = PR.R[A][1];
      std::string Analysis = A == 0 ? "modref" : "pointer";
      if (!Without.Ok || !With.Ok) {
        // A dead sandboxed child outranks in-protocol failures, and crash >
        // oom > timeout matches the process exit severity (jobExitSeverity).
        auto ChildIs = [&](SandboxStatus S) {
          return Without.Child == S || With.Child == S;
        };
        const char *Cell = "error";
        if (ChildIs(SandboxStatus::Crash))
          Cell = "CRASHED";
        else if (ChildIs(SandboxStatus::Oom))
          Cell = "OOM";
        else if (ChildIs(SandboxStatus::Timeout))
          Cell = "TIMEOUT";
        else if (Without.Diverged || With.Diverged)
          Cell = "diverged";
        else if (Without.BaselineFailed || With.BaselineFailed)
          Cell = "baseline failed";
        T.addRow({A == 0 ? PR.Name : "", Analysis, Cell, Cell, "-", "-"});
        continue;
      }
      uint64_t W0 = Pick(Without), W1 = Pick(With);
      int64_t Diff = static_cast<int64_t>(W0) - static_cast<int64_t>(W1);
      double Pct = W0 ? 100.0 * static_cast<double>(Diff) /
                            static_cast<double>(W0)
                      : 0.0;
      T.addRow({A == 0 ? PR.Name : "", Analysis, withCommas(W0),
                withCommas(W1), withCommasSigned(Diff), fixed(Pct, 2)});
    }
  }
  return T.render();
}

std::string rpcc::suiteCellName(int Analysis, int Promotion) {
  return std::string(Analysis == 0 ? "modref" : "pointer") +
         (Promotion ? "/with" : "/without");
}

std::string rpcc::formatSuiteRemarkSummary(
    const std::vector<ProgramResults> &Programs) {
  TextTable T({"program", "cell", "promoted", "missed", "hoisted",
               "residual"});
  for (const ProgramResults &PR : Programs) {
    for (int A = 0; A != 2; ++A)
      for (int P = 0; P != 2; ++P) {
        const ConfigCounts &C = PR.R[A][P];
        T.addRow({A == 0 && P == 0 ? PR.Name : "", suiteCellName(A, P),
                  withCommas(C.RemarksPromoted), withCommas(C.RemarksMissed),
                  withCommas(C.RemarksHoisted),
                  withCommas(C.RemarksResidual)});
      }
  }
  return T.render();
}

Status rpcc::loadBenchProgram(const std::string &Name, std::string &Src) {
  std::string Path = std::string(RPCC_PROGRAMS_DIR) + "/" + Name + ".c";
  std::ifstream In(Path);
  if (!In)
    return Status::error("cannot open benchmark program " + Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  Src = SS.str();
  return Status::ok();
}

std::string rpcc::loadBenchProgram(const std::string &Name) {
  std::string Src;
  Status S = loadBenchProgram(Name, Src);
  if (S.isError()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    std::exit(1);
  }
  return Src;
}

const std::vector<std::string> &rpcc::benchProgramNames() {
  static const std::vector<std::string> Names = {
      "tsp",    "mlink",     "fft",   "clean", "sim",
      "dhrystone", "water",  "indent", "allroots", "bc",
      "go",     "bison",     "gzip_enc", "gzip_dec"};
  return Names;
}
