//===- driver/CompileCache.cpp --------------------------------------------===//

#include "driver/CompileCache.h"

using namespace rpcc;

CompileCache::Entry &CompileCache::entryFor(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Slot = Entries[Key];
  if (!Slot)
    Slot = std::make_unique<Entry>();
  return *Slot;
}

CompileOutput CompileCache::compile(const std::string &Key,
                                    const std::string &Source,
                                    const CompilerConfig &Cfg) {
  Entry &E = entryFor(Key);
  size_t Kind = Cfg.Analysis == AnalysisKind::PointsTo ? 1 : 0;

  bool Missed = false;
  std::call_once(E.FrontendOnce, [&] {
    StageOptions SO;
    SO.CollectTiming = Opts.CollectTiming;
    SO.Trace = Opts.Trace;
    SO.TraceLabel = Key;
    E.FA = runFrontend(Source, SO);
    Missed = true;
  });
  std::call_once(E.AnalyzedOnce[Kind], [&] {
    StageOptions SO;
    SO.CollectTiming = Opts.CollectTiming;
    SO.Trace = Opts.Trace;
    SO.TraceLabel = Key + "/" + (Kind ? "points-to" : "modref");
    E.AM[Kind] = analyzeFrontend(E.FA, Cfg.Analysis, SO);
    Missed = true;
  });
  (Missed ? Misses : Hits).fetch_add(1, std::memory_order_relaxed);

  CompileOutput Out = compileSuffix(E.AM[Kind], Cfg);
  if (Missed)
    Out.Timing.CacheMisses = 1;
  else
    Out.Timing.CacheHits = 1;
  return Out;
}

TimingReport CompileCache::sharedTiming(const std::string &Key) const {
  TimingReport R;
  std::lock_guard<std::mutex> L(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return R;
  const Entry &E = *It->second;
  R.merge(E.FA.Timing);
  R.FrontendMillis += E.FA.WallMillis;
  for (const AnalyzedModule &AM : E.AM) {
    R.merge(AM.Timing);
    R.FrontendMillis += AM.WallMillis;
  }
  return R;
}
