//===- driver/CompileCache.cpp --------------------------------------------===//

#include "driver/CompileCache.h"

#include "obs/Metrics.h"

using namespace rpcc;

namespace {

/// Cache metric handles, registered once. Hit/miss split is Volatile: with
/// --jobs > 1 the call_once races decide which job pays the miss. The
/// latency histograms are count-stable: how many frontends/analyses/
/// suffixes run is deterministic, their durations are wall time.
struct CacheMetrics {
  Counter Hits, Misses;
  Histogram FrontendUs, AnalysisUs, SuffixUs;
  CacheMetrics() {
    auto &R = MetricsRegistry::global();
    Hits = R.counter("cache.hits", {}, MetricStability::Volatile, "ops",
                     "Compile cache hits (shared-prefix reuse).");
    Misses = R.counter("cache.misses", {}, MetricStability::Volatile, "ops",
                       "Compile cache misses (frontend or analysis ran).");
    FrontendUs = R.histogram("compile.frontend_us", {},
                             MetricStability::CountStable, "us",
                             "Frontend stage latency (lex..cfg-normalize).");
    AnalysisUs = R.histogram("compile.analysis_us", {},
                             MetricStability::CountStable, "us",
                             "Alias analysis stage latency.");
    SuffixUs = R.histogram("compile.suffix_us", {},
                           MetricStability::CountStable, "us",
                           "Config-dependent compile suffix latency.");
  }
};

CacheMetrics &cacheMetrics() {
  static CacheMetrics M;
  return M;
}

} // namespace

CompileCache::Entry &CompileCache::entryFor(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Slot = Entries[Key];
  if (!Slot)
    Slot = std::make_unique<Entry>();
  return *Slot;
}

CompileOutput CompileCache::compile(const std::string &Key,
                                    const std::string &Source,
                                    const CompilerConfig &Cfg) {
  Entry &E = entryFor(Key);
  size_t Kind = Cfg.Analysis == AnalysisKind::PointsTo ? 1 : 0;
  CacheMetrics &CM = cacheMetrics();

  bool Missed = false;
  std::call_once(E.FrontendOnce, [&] {
    StageOptions SO;
    SO.CollectTiming = Opts.CollectTiming;
    SO.Trace = Opts.Trace;
    SO.TraceLabel = Key;
    uint64_t T0 = metricsNowUs();
    E.FA = runFrontend(Source, SO);
    CM.FrontendUs.observe(metricsNowUs() - T0);
    Missed = true;
  });
  std::call_once(E.AnalyzedOnce[Kind], [&] {
    StageOptions SO;
    SO.CollectTiming = Opts.CollectTiming;
    SO.Trace = Opts.Trace;
    SO.TraceLabel = Key + "/" + (Kind ? "points-to" : "modref");
    uint64_t T0 = metricsNowUs();
    E.AM[Kind] = analyzeFrontend(E.FA, Cfg.Analysis, SO);
    CM.AnalysisUs.observe(metricsNowUs() - T0);
    Missed = true;
  });
  (Missed ? Misses : Hits).fetch_add(1, std::memory_order_relaxed);
  (Missed ? CM.Misses : CM.Hits).inc();

  uint64_t T0 = metricsNowUs();
  CompileOutput Out = compileSuffix(E.AM[Kind], Cfg);
  CM.SuffixUs.observe(metricsNowUs() - T0);
  if (Missed)
    Out.Timing.CacheMisses = 1;
  else
    Out.Timing.CacheHits = 1;
  return Out;
}

TimingReport CompileCache::sharedTiming(const std::string &Key) const {
  TimingReport R;
  std::lock_guard<std::mutex> L(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return R;
  const Entry &E = *It->second;
  R.merge(E.FA.Timing);
  R.FrontendMillis += E.FA.WallMillis;
  for (const AnalyzedModule &AM : E.AM) {
    R.merge(AM.Timing);
    R.FrontendMillis += AM.WallMillis;
  }
  return R;
}
