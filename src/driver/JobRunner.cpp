//===- driver/JobRunner.cpp -----------------------------------------------===//

#include "driver/JobRunner.h"

#include "driver/PassTiming.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

using namespace rpcc;

const char *rpcc::workerFaultName(WorkerFault F) {
  switch (F) {
  case WorkerFault::None: return "none";
  case WorkerFault::Crash: return "crash";
  case WorkerFault::Hang: return "hang";
  case WorkerFault::Oom: return "oom";
  }
  return "?";
}

bool rpcc::parseWorkerFault(const std::string &Name, WorkerFault &Out) {
  if (Name == "none")
    Out = WorkerFault::None;
  else if (Name == "crash")
    Out = WorkerFault::Crash;
  else if (Name == "hang")
    Out = WorkerFault::Hang;
  else if (Name == "oom")
    Out = WorkerFault::Oom;
  else
    return false;
  return true;
}

SandboxStatus rpcc::expectedFaultStatus(WorkerFault F) {
  switch (F) {
  case WorkerFault::Crash:
    return SandboxStatus::Crash;
  case WorkerFault::Hang:
    return SandboxStatus::Timeout;
  case WorkerFault::Oom:
    return SandboxStatus::Oom;
  case WorkerFault::None:
    break;
  }
  return SandboxStatus::Ok;
}

namespace {

/// Executes the injected sabotage inside the child. Never returns for any
/// fault other than None.
void executeFault(WorkerFault F, const SandboxLimits &Limits) {
  switch (F) {
  case WorkerFault::None:
    return;
  case WorkerFault::Crash:
    // abort() raises SIGABRT, which sanitizer runtimes leave alone (unlike
    // SIGSEGV, which ASan intercepts into a plain exit), so the crash
    // classifies identically in every build flavor.
    std::abort();
  case WorkerFault::Hang:
    // Sleep forever; the parent's watchdog SIGKILLs at the wall deadline.
    for (;;)
      std::this_thread::sleep_for(std::chrono::seconds(3600));
  case WorkerFault::Oom: {
    // Allocate until the cap bites. Under RLIMIT_AS the kernel fails an
    // allocation and operator new invokes the sandbox's new-handler; under
    // sanitizer builds (no RLIMIT_AS) a bounded hog simulates exhaustion by
    // invoking the handler directly — both leave through the Oom protocol.
    // The chunks stay untouched: RLIMIT_AS trips on address space, and
    // writing them would make instrumented (TSan) children so slow the
    // wall watchdog fires first, misclassifying the fault as a timeout.
    uint64_t Cap = Limits.MemoryBytes ? Limits.MemoryBytes * 2
                                      : (uint64_t(64) << 20);
    std::vector<char *> Hog;
    for (uint64_t Held = 0; Held < Cap; Held += 1 << 20)
      Hog.push_back(new char[1 << 20]);
    std::get_new_handler()();
    std::abort(); // unreachable: the handler never returns
  }
  }
}

} // namespace

void JobLog::add(JobRecord R) {
  std::lock_guard<std::mutex> Lock(Mu);
  Records.push_back(std::move(R));
}

std::vector<JobRecord> JobLog::records() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Records;
}

size_t JobLog::abnormal() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const JobRecord &R : Records)
    N += R.Status != SandboxStatus::Ok && R.Status != SandboxStatus::Trap;
  return N;
}

std::string JobLog::toJsonArray() const {
  std::vector<JobRecord> Sorted = records();
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const JobRecord &A, const JobRecord &B) {
                     return A.Name < B.Name;
                   });
  std::ostringstream OS;
  OS << "[";
  for (size_t I = 0; I != Sorted.size(); ++I) {
    const JobRecord &R = Sorted[I];
    if (I)
      OS << ",";
    OS << "{\"name\":\"" << jsonEscape(R.Name) << "\"";
    OS << ",\"status\":\"" << sandboxStatusName(R.Status) << "\"";
    OS << ",\"signal\":" << R.Signal;
    OS << ",\"wall_ms\":" << fixed(R.WallMillis, 3);
    OS << ",\"attempts\":" << R.Attempts << "}";
  }
  OS << "]";
  return OS.str();
}

namespace {

/// One outcome counter per taxonomy status, so the sum over labels equals
/// the number of runJob calls (and therefore the JobLog record count when a
/// log is attached). Stable: which cells crash/trap is deterministic.
Counter &jobOutcomeCounter(SandboxStatus S) {
  static Counter Counters[] = {
      MetricsRegistry::global().counter(
          "jobs.outcome", {{"status", sandboxStatusName(SandboxStatus::Ok)}},
          MetricStability::Stable, "ops", "Jobs per final sandbox status."),
      MetricsRegistry::global().counter(
          "jobs.outcome", {{"status", sandboxStatusName(SandboxStatus::Trap)}},
          MetricStability::Stable, "ops", "Jobs per final sandbox status."),
      MetricsRegistry::global().counter(
          "jobs.outcome",
          {{"status", sandboxStatusName(SandboxStatus::Timeout)}},
          MetricStability::Stable, "ops", "Jobs per final sandbox status."),
      MetricsRegistry::global().counter(
          "jobs.outcome", {{"status", sandboxStatusName(SandboxStatus::Oom)}},
          MetricStability::Stable, "ops", "Jobs per final sandbox status."),
      MetricsRegistry::global().counter(
          "jobs.outcome",
          {{"status", sandboxStatusName(SandboxStatus::Crash)}},
          MetricStability::Stable, "ops", "Jobs per final sandbox status."),
      MetricsRegistry::global().counter(
          "jobs.outcome",
          {{"status", sandboxStatusName(SandboxStatus::InternalError)}},
          MetricStability::Stable, "ops", "Jobs per final sandbox status."),
  };
  return Counters[static_cast<size_t>(S)];
}

struct JobMetrics {
  Counter Retries;
  Histogram ChildWallUs, ChildCpuUs;
  JobMetrics() {
    auto &R = MetricsRegistry::global();
    Retries = R.counter("jobs.retries", {}, MetricStability::Volatile, "ops",
                        "Extra sandbox attempts after transient "
                        "infrastructure failures.");
    ChildWallUs = R.histogram("jobs.child_wall_us", {},
                              MetricStability::CountStable, "us",
                              "Wall time of sandboxed children.");
    ChildCpuUs = R.histogram("jobs.child_cpu_us", {},
                             MetricStability::CountStable, "us",
                             "CPU time (user+sys) of sandboxed children.");
  }
};

JobMetrics &jobMetrics() {
  static JobMetrics M;
  return M;
}

} // namespace

SandboxResult rpcc::runJob(const SandboxJob &Job, const JobOptions &Opts) {
  double T0 = Opts.Trace ? timingNowMs() : 0;
  SandboxResult R;
  if (!Opts.Sandbox) {
    // Inline mode: the job's own verdict is the outcome; there is nothing
    // between a misbehaving job and the process.
    double W0 = timingNowMs();
    R.Status = Job(R.Payload) ? SandboxStatus::Ok : SandboxStatus::Trap;
    if (R.Status == SandboxStatus::Trap)
      R.Error = R.Payload;
    R.WallMillis = timingNowMs() - W0;
    R.Attempts = 1;
  } else {
    SandboxOptions SO;
    SO.Limits = Opts.Limits;
    SO.MaxAttempts = Opts.MaxAttempts;
    SO.ForkFn = Opts.ForkFn;
    WorkerFault Inject = Opts.Inject;
    SandboxLimits Limits = Opts.Limits;
    R = runSandboxed(
        [&Job, Inject, Limits](std::string &Payload) {
          executeFault(Inject, Limits);
          return Job(Payload);
        },
        SO);
  }
  // Counted unconditionally, at the same point a JobLog record would be
  // written: whenever a log is attached, the outcome counters sum exactly
  // to its taxonomy.
  jobOutcomeCounter(R.Status).inc();
  JobMetrics &JM = jobMetrics();
  if (R.Attempts > 1)
    JM.Retries.inc(R.Attempts - 1);
  if (Opts.Sandbox) {
    JM.ChildWallUs.observe(static_cast<uint64_t>(R.WallMillis * 1e3));
    JM.ChildCpuUs.observe(static_cast<uint64_t>(R.CpuMillis * 1e3));
  }
  if (Opts.Log)
    Opts.Log->add(
        {Opts.Name, R.Status, R.Signal, R.WallMillis, R.Attempts});
  if (Opts.Trace)
    Opts.Trace->addSpan(Opts.Name, "job", T0, timingNowMs() - T0,
                        {{"status", sandboxStatusName(R.Status)},
                         {"attempts", std::to_string(R.Attempts)}});
  return R;
}

int rpcc::jobExitSeverity(bool AnyCrash, bool AnyOom, bool AnyTimeout) {
  if (AnyCrash)
    return ExitCodeCrashedChild;
  if (AnyOom)
    return ExitCodeOomChild;
  if (AnyTimeout)
    return ExitCodeTimedOutChild;
  return 0;
}
