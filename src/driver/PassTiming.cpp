//===- driver/PassTiming.cpp ----------------------------------------------===//

#include "driver/PassTiming.h"

#include "ir/Module.h"
#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <sstream>

using namespace rpcc;

namespace {

/// Canonical pipeline order for rendered reports. Merged aggregates collect
/// passes in first-seen order, which depends on which job finished first
/// when cells run in parallel; sorting by this table (unknown names after,
/// alphabetically) makes `--timing` and `--timing-json` output independent
/// of the merge order.
int passRank(const std::string &Name) {
  static const char *Order[] = {
      "lower",     "cfg-normalize", "points-to", "modref",
      "strengthen", "promote",      "vn",        "pre",
      "copy-prop", "sccp",          "cleanup",   "licm",
      "ptr-promote", "dce",         "regalloc",  "verify",
      "residual-audit"};
  for (size_t I = 0; I != sizeof(Order) / sizeof(Order[0]); ++I)
    if (Name == Order[I])
      return static_cast<int>(I);
  return static_cast<int>(sizeof(Order) / sizeof(Order[0]));
}

std::vector<PassTime> canonicalOrder(const std::vector<PassTime> &Passes) {
  std::vector<PassTime> Sorted = Passes;
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const PassTime &A, const PassTime &B) {
                     int RA = passRank(A.Name), RB = passRank(B.Name);
                     if (RA != RB)
                       return RA < RB;
                     return A.Name < B.Name;
                   });
  return Sorted;
}

} // namespace

void TimingReport::addPass(const std::string &Name, double Millis,
                           uint64_t OpsBefore, uint64_t OpsAfter) {
  for (PassTime &P : Passes)
    if (P.Name == Name) {
      P.Millis += Millis;
      P.OpsBefore += OpsBefore;
      P.OpsAfter += OpsAfter;
      ++P.Invocations;
      return;
    }
  Passes.push_back(PassTime{Name, Millis, OpsBefore, OpsAfter, 1});
}

void TimingReport::merge(const TimingReport &O) {
  for (const PassTime &P : O.Passes) {
    bool Found = false;
    for (PassTime &Mine : Passes)
      if (Mine.Name == P.Name) {
        Mine.Millis += P.Millis;
        Mine.OpsBefore += P.OpsBefore;
        Mine.OpsAfter += P.OpsAfter;
        Mine.Invocations += P.Invocations;
        Found = true;
        break;
      }
    if (!Found)
      Passes.push_back(P);
  }
  CompileMillis += O.CompileMillis;
  InterpMillis += O.InterpMillis;
  InterpSteps += O.InterpSteps;
  Compiles += O.Compiles;
  FrontendMillis += O.FrontendMillis;
  SuffixMillis += O.SuffixMillis;
  CacheHits += O.CacheHits;
  CacheMisses += O.CacheMisses;
  PoolItems += O.PoolItems;
  PoolBusyMillis += O.PoolBusyMillis;
  if (Engine.empty())
    Engine = O.Engine;
}

uint64_t rpcc::countStaticOps(const Module &M) {
  uint64_t N = 0;
  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    const Function *F = M.function(static_cast<FuncId>(FI));
    for (size_t BI = 0; BI != F->numBlocks(); ++BI)
      N += F->block(static_cast<BlockId>(BI))->size();
  }
  return N;
}

double rpcc::timingNowMs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

std::string rpcc::formatTimingReport(const TimingReport &R) {
  TextTable T({"pass", "calls", "ms", "ops before", "ops after", "delta"});
  for (const PassTime &P : canonicalOrder(R.Passes)) {
    int64_t Delta = static_cast<int64_t>(P.OpsAfter) -
                    static_cast<int64_t>(P.OpsBefore);
    T.addRow({P.Name, withCommas(P.Invocations), fixed(P.Millis, 3),
              withCommas(P.OpsBefore), withCommas(P.OpsAfter),
              withCommasSigned(Delta)});
  }
  std::ostringstream OS;
  OS << T.render();
  OS << "compile total: " << fixed(R.CompileMillis, 3) << " ms over "
     << withCommas(R.Compiles) << " compile(s)\n";
  OS << "  frontend:    " << fixed(R.FrontendMillis, 3) << " ms, suffix: "
     << fixed(R.SuffixMillis, 3) << " ms\n";
  if (R.CacheHits || R.CacheMisses)
    OS << "  cache:       " << withCommas(R.CacheHits) << " hit(s), "
       << withCommas(R.CacheMisses) << " miss(es)\n";
  if (R.PoolItems)
    OS << "  pool:        " << withCommas(R.PoolItems) << " item(s), "
       << fixed(R.PoolBusyMillis, 3) << " ms busy\n";
  OS << "interpret:     " << fixed(R.InterpMillis, 3) << " ms, "
     << withCommas(R.InterpSteps) << " steps";
  if (!R.Engine.empty())
    OS << " (engine " << R.Engine << ")";
  OS << "\n";
  return OS.str();
}

std::string rpcc::formatTimingJson(const TimingReport &R,
                                   const std::string &JobsJson) {
  std::ostringstream OS;
  OS << "{\"compiles\":" << R.Compiles;
  OS << ",\"compile_ms\":" << fixed(R.CompileMillis, 3);
  OS << ",\"interp_ms\":" << fixed(R.InterpMillis, 3);
  OS << ",\"interp_steps\":" << R.InterpSteps;
  OS << ",\"frontend_ms\":" << fixed(R.FrontendMillis, 3);
  OS << ",\"suffix_ms\":" << fixed(R.SuffixMillis, 3);
  OS << ",\"cache_hits\":" << R.CacheHits;
  OS << ",\"cache_misses\":" << R.CacheMisses;
  OS << ",\"pool_items\":" << R.PoolItems;
  OS << ",\"pool_busy_ms\":" << fixed(R.PoolBusyMillis, 3);
  OS << ",\"engine\":\"" << jsonEscape(R.Engine) << "\"";
  if (!JobsJson.empty())
    OS << ",\"jobs\":" << JobsJson;
  OS << ",\"passes\":[";
  std::vector<PassTime> Sorted = canonicalOrder(R.Passes);
  for (size_t I = 0; I != Sorted.size(); ++I) {
    const PassTime &P = Sorted[I];
    if (I)
      OS << ",";
    OS << "{\"name\":\"" << jsonEscape(P.Name) << "\"";
    OS << ",\"calls\":" << P.Invocations;
    OS << ",\"ms\":" << fixed(P.Millis, 3);
    OS << ",\"ops_before\":" << P.OpsBefore;
    OS << ",\"ops_after\":" << P.OpsAfter << "}";
  }
  OS << "]}\n";
  return OS.str();
}
