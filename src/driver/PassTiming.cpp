//===- driver/PassTiming.cpp ----------------------------------------------===//

#include "driver/PassTiming.h"

#include "ir/Module.h"
#include "support/Format.h"

#include <chrono>
#include <sstream>

using namespace rpcc;

void TimingReport::addPass(const std::string &Name, double Millis,
                           uint64_t OpsBefore, uint64_t OpsAfter) {
  for (PassTime &P : Passes)
    if (P.Name == Name) {
      P.Millis += Millis;
      P.OpsBefore += OpsBefore;
      P.OpsAfter += OpsAfter;
      ++P.Invocations;
      return;
    }
  Passes.push_back(PassTime{Name, Millis, OpsBefore, OpsAfter, 1});
}

void TimingReport::merge(const TimingReport &O) {
  for (const PassTime &P : O.Passes) {
    bool Found = false;
    for (PassTime &Mine : Passes)
      if (Mine.Name == P.Name) {
        Mine.Millis += P.Millis;
        Mine.OpsBefore += P.OpsBefore;
        Mine.OpsAfter += P.OpsAfter;
        Mine.Invocations += P.Invocations;
        Found = true;
        break;
      }
    if (!Found)
      Passes.push_back(P);
  }
  CompileMillis += O.CompileMillis;
  InterpMillis += O.InterpMillis;
  InterpSteps += O.InterpSteps;
  Compiles += O.Compiles;
}

uint64_t rpcc::countStaticOps(const Module &M) {
  uint64_t N = 0;
  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    const Function *F = M.function(static_cast<FuncId>(FI));
    for (size_t BI = 0; BI != F->numBlocks(); ++BI)
      N += F->block(static_cast<BlockId>(BI))->size();
  }
  return N;
}

double rpcc::timingNowMs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

std::string rpcc::formatTimingReport(const TimingReport &R) {
  TextTable T({"pass", "calls", "ms", "ops before", "ops after", "delta"});
  for (const PassTime &P : R.Passes) {
    int64_t Delta = static_cast<int64_t>(P.OpsAfter) -
                    static_cast<int64_t>(P.OpsBefore);
    T.addRow({P.Name, withCommas(P.Invocations), fixed(P.Millis, 3),
              withCommas(P.OpsBefore), withCommas(P.OpsAfter),
              withCommasSigned(Delta)});
  }
  std::ostringstream OS;
  OS << T.render();
  OS << "compile total: " << fixed(R.CompileMillis, 3) << " ms over "
     << withCommas(R.Compiles) << " compile(s)\n";
  OS << "interpret:     " << fixed(R.InterpMillis, 3) << " ms, "
     << withCommas(R.InterpSteps) << " steps\n";
  return OS.str();
}

std::string rpcc::formatTimingJson(const TimingReport &R) {
  std::ostringstream OS;
  OS << "{\"compiles\":" << R.Compiles;
  OS << ",\"compile_ms\":" << fixed(R.CompileMillis, 3);
  OS << ",\"interp_ms\":" << fixed(R.InterpMillis, 3);
  OS << ",\"interp_steps\":" << R.InterpSteps;
  OS << ",\"passes\":[";
  for (size_t I = 0; I != R.Passes.size(); ++I) {
    const PassTime &P = R.Passes[I];
    if (I)
      OS << ",";
    OS << "{\"name\":\"" << P.Name << "\"";
    OS << ",\"calls\":" << P.Invocations;
    OS << ",\"ms\":" << fixed(P.Millis, 3);
    OS << ",\"ops_before\":" << P.OpsBefore;
    OS << ",\"ops_after\":" << P.OpsAfter << "}";
  }
  OS << "]}\n";
  return OS.str();
}
