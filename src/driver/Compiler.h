//===- driver/Compiler.h - Pipeline assembly --------------------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the paper's §5 pipeline: "Each version was optimized with
/// value numbering, partial redundancy elimination, constant propagation,
/// loop invariant code motion, dead code elimination, register allocation,
/// and a basic block cleaning pass", with register promotion performed "in
/// the early phases of optimization". Four configurations reproduce the
/// evaluation: {MOD/REF, points-to} × {without, with scalar promotion}.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_DRIVER_COMPILER_H
#define RPCC_DRIVER_COMPILER_H

#include "alias/TagRefine.h"
#include "driver/PassTiming.h"
#include "interp/Interpreter.h"
#include "ir/Module.h"
#include "opt/Licm.h"
#include "opt/Pre.h"
#include "opt/Sccp.h"
#include "opt/ValueNumbering.h"
#include "promote/PointerPromotion.h"
#include "promote/ScalarPromotion.h"
#include "regalloc/GraphColoring.h"

#include <functional>
#include <memory>
#include <string>

namespace rpcc {

class RemarkEngine;
class TraceCollector;

enum class AnalysisKind {
  ModRef,  ///< interprocedural MOD/REF only
  PointsTo ///< points-to analysis feeding a MOD/REF refresh
};

struct CompilerConfig {
  AnalysisKind Analysis = AnalysisKind::ModRef;
  bool ScalarPromotion = true;
  bool PointerPromotion = false; ///< §3.3 extension, benched separately
  bool EnableOpts = true;        ///< VN, PRE, SCCP, LICM, DCE, cleanup
  bool RegisterAllocation = true;
  /// Allocatable registers per class (integer + floating point). The
  /// default models a MIPS-era machine: 32 architectural registers per
  /// class with roughly half consumed by linkage, assembler temporaries,
  /// and calling-convention reservations.
  unsigned NumRegisters = 16;
  /// 1997-vintage allocator: Briggs-only coalescing, no rematerialization.
  /// Used by the pressure ablation to reproduce the paper's water anecdote
  /// ("these allocators are known to over-spill in tight situations").
  bool ClassicAllocator = false;
  PromotionOptions Promo;
  /// Invoked right after alias analysis annotates the module (tag lists and
  /// call MOD/REF summaries) and before opcode strengthening and promotion
  /// consume them. The fuzzer's fault injector uses this to conservatively
  /// widen the analysis results in place; a correct pipeline must tolerate
  /// any over-approximation without changing program behavior.
  std::function<void(Module &)> PostAnalysisHook;
  /// Collect per-pass wall time and IL op counts into CompileOutput::Timing.
  /// Off by default so fuzz/test hot paths pay nothing.
  bool CollectTiming = false;
  /// When non-null, the promotion passes, LICM and PRE emit optimization
  /// remarks into this engine, and a residual audit of the final IL runs at
  /// the end of the pipeline. One engine per compile job (not thread-safe).
  RemarkEngine *Remarks = nullptr;
  /// Run the end-of-pipeline residual audit when Remarks is set. The fuzz
  /// oracle turns this off: it only compares promotion-decision remarks and
  /// the audit's per-function loop analysis would tax every cell.
  bool ResidualAudit = true;
  /// When non-null, every pipeline pass adds a span (category "pass") to
  /// this shared, thread-safe collector.
  TraceCollector *Trace = nullptr;
  /// Identifies this compile job in trace span args (program or cell name).
  std::string TraceLabel;
};

struct CompileStats {
  StrengthenStats Strengthen;
  PromotionStats Promo;
  PointerPromotionStats PtrPromo;
  VnStats Vn;
  PreStats Pre;
  SccpStats Sccp;
  LicmStats Licm;
  unsigned DceRemoved = 0;
  RegAllocStats RegAlloc;
};

struct CompileOutput {
  bool Ok = false;
  std::string Errors;
  std::unique_ptr<Module> M;
  CompileStats Stats;
  /// Per-pass wall time and op counts; populated only when
  /// CompilerConfig::CollectTiming is set (interpreter fields are filled by
  /// whoever runs the module).
  TimingReport Timing;
};

//===----------------------------------------------------------------------===//
// Staged pipeline
//
// The pipeline factors into three stages so that work shared between the
// suite's configuration cells runs once and forks:
//
//   1. runFrontend      — lex/parse/sema/lowering plus CFG normalization.
//                         Depends only on the source text; one per program.
//   2. analyzeFrontend  — alias analysis annotating tag lists and call
//                         MOD/REF summaries. Depends on (program, analysis
//                         kind); forks the frontend module via
//                         Module::clone() and rewrites the fork.
//   3. compileSuffix    — everything configuration-dependent: the
//                         post-analysis hook, opcode strengthening,
//                         promotion, scalar opts, register allocation.
//                         Forks the analyzed module per cell.
//
// Stages never mutate their input artifact, so one artifact can feed any
// number of concurrent downstream stages (see driver/CompileCache.h).
// compileProgram() below runs all three stages in place with no forks; it
// produces byte-identical results because every cross-stage handoff is a
// faithful deep copy.
//===----------------------------------------------------------------------===//

/// Options for the config-independent stages (frontend, analysis). A subset
/// of CompilerConfig: only the observability knobs apply before the suffix.
struct StageOptions {
  /// Collect per-pass wall time and op counts into the artifact's Timing.
  bool CollectTiming = false;
  /// When non-null, stage passes add spans (category "pass") here.
  TraceCollector *Trace = nullptr;
  /// Trace span label. Callers that share artifacts across cells (the
  /// compile cache) pass the program name, not a cell name, so the trace
  /// skeleton does not depend on which cell triggered the stage.
  std::string TraceLabel;
};

/// Stage 1 output: the lowered, CFG-normalized module with its tag and
/// layout tables — everything that depends only on the source text.
struct FrontendArtifact {
  bool Ok = false;
  std::string Errors;
  std::unique_ptr<Module> M;
  /// lower/cfg-normalize pass samples (only when StageOptions asked).
  TimingReport Timing;
  /// Frontend wall time; always measured.
  double WallMillis = 0;
};

/// Stage 2 output: a fork of the frontend module annotated by one alias
/// analysis. Timing/WallMillis cover the analysis passes only; combine with
/// the FrontendArtifact's numbers for whole-prefix accounting.
struct AnalyzedModule {
  bool Ok = false;
  std::string Errors;
  AnalysisKind Analysis = AnalysisKind::ModRef;
  std::unique_ptr<Module> M;
  TimingReport Timing;
  double WallMillis = 0;
};

/// Runs lex/parse/sema/lowering and CFG normalization once. The artifact is
/// immutable from here on: downstream stages fork it.
FrontendArtifact runFrontend(const std::string &Source,
                             const StageOptions &Opts = {});

/// Forks \p FA and annotates the fork with \p Kind's alias information (tag
/// lists, call MOD/REF summaries). \p FA is not mutated.
AnalyzedModule analyzeFrontend(const FrontendArtifact &FA, AnalysisKind Kind,
                               const StageOptions &Opts = {});

/// Runs the configuration-dependent suffix (post-analysis hook through
/// verification and the residual audit) on a fresh fork of \p AM. \p AM is
/// not mutated, so concurrent calls against one analyzed module are safe.
/// Cfg.Analysis must match AM.Analysis.
CompileOutput compileSuffix(const AnalyzedModule &AM,
                            const CompilerConfig &Cfg);

/// Compiles MiniC source through the configured pipeline. The returned
/// module is ready for the counting interpreter. Equivalent to the three
/// stages run back to back, but operates in place with no module forks.
CompileOutput compileProgram(const std::string &Source,
                             const CompilerConfig &Cfg = {});

/// Convenience: compile then interpret.
ExecResult compileAndRun(const std::string &Source,
                         const CompilerConfig &Cfg = {},
                         const InterpOptions &IOpts = {});

} // namespace rpcc

#endif // RPCC_DRIVER_COMPILER_H
