//===- driver/SuiteRunner.h - Figure 5-7 experiment driver ------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a benchmark program through the paper's four configurations —
/// {MOD/REF, points-to} × {without, with scalar promotion} — and formats
/// the resulting dynamic counts exactly like Figures 5 (total operations),
/// 6 (stores), and 7 (loads): program, analysis, without, with, difference,
/// and percent removed.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_DRIVER_SUITERUNNER_H
#define RPCC_DRIVER_SUITERUNNER_H

#include "driver/Compiler.h"

#include <string>
#include <vector>

namespace rpcc {

struct SuiteOptions {
  /// Allocatable registers per class; see CompilerConfig::NumRegisters.
  unsigned NumRegisters = 16;
  bool PointerPromotion = false;
  InterpOptions Interp;
  /// Worker threads fanning out over config cells (and, in runSuite, over
  /// programs x cells). 1 = serial. Every cell compiles its own Module, so
  /// results — and therefore the rendered tables — are byte-identical to a
  /// serial run regardless of Jobs.
  unsigned Jobs = 1;
  /// Collect per-pass timing into ProgramResults::Timing.
  bool CollectTiming = false;
};

struct ConfigCounts {
  bool Ok = false;
  std::string Error;
  uint64_t Total = 0, Loads = 0, Stores = 0;
  int64_t ExitCode = 0;
  std::string Output;   ///< program stdout, for cross-config equality checks
  bool Diverged = false; ///< behavior differs from the modref/no-promo cell
  /// The modref/no-promotion cell failed, so this cell's counts have no
  /// baseline to be compared against; they must not appear in the paper
  /// tables as if they were comparable.
  bool BaselineFailed = false;
};

/// Results of one program across the 2x2 matrix:
/// index [analysis][promotion], analysis 0 = modref / 1 = pointer,
/// promotion 0 = without / 1 = with.
struct ProgramResults {
  std::string Name;
  ConfigCounts R[2][2];
  /// Aggregate of the four cells' pass timings (cells merged in matrix
  /// order); empty unless SuiteOptions::CollectTiming.
  TimingReport Timing;
};

/// Compiles and executes under all four configurations. Every configuration
/// compiles the same program, so observable behavior (exit code and stdout)
/// must be identical across the matrix; any cell that disagrees with the
/// modref/no-promotion baseline is flagged as diverged and demoted to an
/// error so it cannot silently feed the paper tables.
ProgramResults runAllConfigs(const std::string &Name,
                             const std::string &Source,
                             const SuiteOptions &Opts = {});

/// Compiles and executes every named benchmark program under all four
/// configurations, fanning the programs-x-cells job list across
/// SuiteOptions::Jobs workers. Results come back in program order and are
/// byte-identical to a serial run.
std::vector<ProgramResults> runSuite(const std::vector<std::string> &Names,
                                     const SuiteOptions &Opts = {});

enum class Metric { TotalOps, Stores, Loads };

/// Renders the paper-style table for one metric over many programs.
std::string formatPaperTable(const std::vector<ProgramResults> &Programs,
                             Metric Which);

/// Reads one of the repository's benchmark programs
/// (bench/programs/<name>.c). Aborts with a clear message if missing.
std::string loadBenchProgram(const std::string &Name);

/// Names of the 14-program suite standing in for the paper's Figure 4.
const std::vector<std::string> &benchProgramNames();

} // namespace rpcc

#endif // RPCC_DRIVER_SUITERUNNER_H
