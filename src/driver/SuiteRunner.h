//===- driver/SuiteRunner.h - Figure 5-7 experiment driver ------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a benchmark program through the paper's four configurations —
/// {MOD/REF, points-to} × {without, with scalar promotion} — and formats
/// the resulting dynamic counts exactly like Figures 5 (total operations),
/// 6 (stores), and 7 (loads): program, analysis, without, with, difference,
/// and percent removed.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_DRIVER_SUITERUNNER_H
#define RPCC_DRIVER_SUITERUNNER_H

#include "driver/Compiler.h"
#include "driver/JobRunner.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace rpcc {

class TraceCollector;

struct SuiteOptions {
  /// Allocatable registers per class; see CompilerConfig::NumRegisters.
  unsigned NumRegisters = 16;
  bool PointerPromotion = false;
  InterpOptions Interp;
  /// Worker threads fanning out over config cells (and, in runSuite, over
  /// programs x cells). 1 = serial. Every cell compiles its own Module, so
  /// results — and therefore the rendered tables — are byte-identical to a
  /// serial run regardless of Jobs.
  unsigned Jobs = 1;
  /// Collect per-pass timing into ProgramResults::Timing.
  bool CollectTiming = false;
  /// Collect optimization remarks in every cell: per-cell counts feed the
  /// suite's stderr summary, and each cell keeps its rendered text/JSON
  /// streams (formatted in-cell, while its Module is alive) so parallel
  /// runs stay byte-identical to serial ones.
  bool Remarks = false;
  /// Restricts remark text/counts to one emitting pass; "" = all passes.
  std::string RemarkPass;
  /// Profile dynamic loads/stores per tag in the modref/with-promotion
  /// cell and build its hot-tag table and explain report.
  bool ProfileTags = false;
  /// When non-null, every cell's compile passes add spans to this shared
  /// collector, labeled "program/analysis+promo".
  TraceCollector *Trace = nullptr;
  /// Share the configuration-independent pipeline prefix across cells
  /// through a CompileCache: the frontend runs once per program and each
  /// alias analysis once per (program, kind); every cell then forks the
  /// cached analyzed module. Results are byte-identical either way — the
  /// flag exists for A/B verification (`--no-compile-cache`) and compile-
  /// time benchmarking.
  bool UseCompileCache = true;
  /// Run every cell in a forked sandbox (driver/JobRunner): a crashing,
  /// hanging, or OOMing cell becomes a classified table entry instead of
  /// killing the suite. Healthy cells produce byte-identical tables either
  /// way; sandboxed cells do not contribute per-pass timing (the child's
  /// TimingReport dies with it) and do not share the compile cache (each
  /// child compiles in its own address space).
  bool Sandbox = false;
  /// Resource caps for sandboxed cells.
  SandboxLimits Limits;
  /// When non-null, every cell's outcome is appended as a JobRecord
  /// (rendered into `--timing-json` as the "jobs" array).
  JobLog *Log = nullptr;
  /// Deliberate sabotage of one sandboxed cell, for end-to-end classifier
  /// proofs: "<program>/<analysis>/<promo>:<fault>", e.g.
  /// "tsp/modref/with:crash" (fault = crash | hang | oom).
  std::string InjectCellFault;
};

struct ConfigCounts {
  bool Ok = false;
  std::string Error;
  uint64_t Total = 0, Loads = 0, Stores = 0;
  int64_t ExitCode = 0;
  std::string Output;   ///< program stdout, for cross-config equality checks
  bool Diverged = false; ///< behavior differs from the modref/no-promo cell
  /// The modref/no-promotion cell failed, so this cell's counts have no
  /// baseline to be compared against; they must not appear in the paper
  /// tables as if they were comparable.
  bool BaselineFailed = false;
  /// How the cell's sandboxed child ended. Ok both for a healthy cell and
  /// for inline (non-sandboxed) execution; Crash/Timeout/Oom render as
  /// CRASHED/TIMEOUT/OOM in the paper tables and drive the process exit
  /// severity (jobExitSeverity).
  SandboxStatus Child = SandboxStatus::Ok;
  /// Terminating signal when Child == Crash (0 if none).
  int ChildSignal = 0;

  /// Observability payloads, filled only under the corresponding
  /// SuiteOptions flags. Pre-rendered inside the cell so the per-module
  /// state (tag names, loop forest) does not have to outlive the cell.
  uint64_t RemarksPromoted = 0; ///< promote + ptr-promote promotions
  uint64_t RemarksMissed = 0;   ///< missed-promotion remarks
  uint64_t RemarksHoisted = 0;  ///< LICM hoists
  uint64_t RemarksResidual = 0; ///< residual-audit records
  std::string RemarksText;      ///< human remark stream (pass-filtered)
  std::string RemarksJson;      ///< JSON lines with program/cell keys
  std::string HotTags;          ///< hot-tag table (profiled cell only)
  std::string Explain;          ///< explain report (profiled cell only)
  std::string ProfileJson;      ///< tag-profile JSON (profiled cell only)
};

/// Results of one program across the 2x2 matrix:
/// index [analysis][promotion], analysis 0 = modref / 1 = pointer,
/// promotion 0 = without / 1 = with.
struct ProgramResults {
  std::string Name;
  ConfigCounts R[2][2];
  /// Aggregate of the four cells' pass timings (cells merged in matrix
  /// order); empty unless SuiteOptions::CollectTiming.
  TimingReport Timing;
};

/// Compiles and executes under all four configurations. Every configuration
/// compiles the same program, so observable behavior (exit code and stdout)
/// must be identical across the matrix; any cell that disagrees with the
/// modref/no-promotion baseline is flagged as diverged and demoted to an
/// error so it cannot silently feed the paper tables.
ProgramResults runAllConfigs(const std::string &Name,
                             const std::string &Source,
                             const SuiteOptions &Opts = {});

/// Compiles and executes every named benchmark program under all four
/// configurations, fanning the programs-x-cells job list across
/// SuiteOptions::Jobs workers. Results come back in program order and are
/// byte-identical to a serial run.
std::vector<ProgramResults> runSuite(const std::vector<std::string> &Names,
                                     const SuiteOptions &Opts = {});

enum class Metric { TotalOps, Stores, Loads };

/// Renders the paper-style table for one metric over many programs.
std::string formatPaperTable(const std::vector<ProgramResults> &Programs,
                             Metric Which);

/// Display name of one matrix cell: "modref/without" ... "pointer/with".
std::string suiteCellName(int Analysis, int Promotion);

/// Renders the per-cell remark-count summary table (program, cell,
/// promoted, missed, hoisted, residual) for `--suite --remarks`.
std::string
formatSuiteRemarkSummary(const std::vector<ProgramResults> &Programs);

/// Reads one of the repository's benchmark programs
/// (bench/programs/<name>.c) into \p Src. Returns an error Status — never
/// exits — so drivers can degrade a missing program to error cells.
Status loadBenchProgram(const std::string &Name, std::string &Src);

/// Convenience wrapper for tests and benchmarks, which treat a missing
/// program as a broken checkout: prints the diagnostic and exits. Library
/// and tool code must use the Status overload above — only executables own
/// process exit.
std::string loadBenchProgram(const std::string &Name);

/// Names of the 14-program suite standing in for the paper's Figure 4.
const std::vector<std::string> &benchProgramNames();

} // namespace rpcc

#endif // RPCC_DRIVER_SUITERUNNER_H
