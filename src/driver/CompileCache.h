//===- driver/CompileCache.h - Shared-prefix compile cache ------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cache over the configuration-independent pipeline prefix. The suite
/// compiles each benchmark under four (or, with ablations, more)
/// configurations that differ only in the suffix: promotion switches,
/// optimization levels, allocator variants. The frontend (lex/parse/sema/
/// lowering/CFG normalization) depends only on the source text, and alias
/// analysis only on (source, analysis kind) — so the cache runs the
/// frontend once per program and the analysis once per (program, kind),
/// then hands every compile job a private Module::clone() fork of the
/// cached analyzed module. Cached artifacts are immutable after
/// construction and are never handed out directly: fork-never-share is the
/// invariant that makes concurrent cells safe.
///
/// Thread-safe: entry creation is mutex-guarded and stage construction runs
/// under std::call_once, so any number of suite/fuzz workers may compile
/// through one cache concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_DRIVER_COMPILECACHE_H
#define RPCC_DRIVER_COMPILECACHE_H

#include "driver/Compiler.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace rpcc {

class CompileCache {
public:
  struct Options {
    /// Collect per-pass timing for the cached prefix stages; retrieve the
    /// accumulated report with sharedTiming() after all compiles finish.
    bool CollectTiming = false;
    /// When non-null, prefix passes add trace spans here. Span labels use
    /// the cache key (program name), not any cell name, so the trace
    /// skeleton is independent of which cell populated the cache.
    TraceCollector *Trace = nullptr;
  };

  CompileCache() = default;
  explicit CompileCache(Options O) : Opts(O) {}

  CompileCache(const CompileCache &) = delete;
  CompileCache &operator=(const CompileCache &) = delete;

  /// Compiles \p Source under \p Cfg, reusing the cached (program,
  /// analysis) prefix when present and building it exactly once when not.
  /// \p Key identifies the program; every call sharing a Key must pass the
  /// same Source. Byte-identical to compileProgram(Source, Cfg) in output
  /// module, stats, remarks, and errors.
  CompileOutput compile(const std::string &Key, const std::string &Source,
                        const CompilerConfig &Cfg);

  /// Timing accumulated by \p Key's cached prefix stages (pass samples plus
  /// FrontendMillis). Merge once into that program's aggregate alongside
  /// its per-cell suffix reports. Call only after all compiles of \p Key
  /// have finished; empty report for an unknown key.
  TimingReport sharedTiming(const std::string &Key) const;

  /// A hit reused a fully-built analyzed module; a miss built the frontend
  /// artifact, the analyzed module, or both.
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

private:
  /// One program's artifacts: the frontend output plus one analyzed module
  /// per AnalysisKind (index 0 = ModRef, 1 = PointsTo). Entries are
  /// heap-allocated so map rehashes never move the once-flags.
  struct Entry {
    std::once_flag FrontendOnce;
    FrontendArtifact FA;
    std::once_flag AnalyzedOnce[2];
    AnalyzedModule AM[2];
  };

  Entry &entryFor(const std::string &Key);

  Options Opts;
  mutable std::mutex Mu; ///< guards Entries (the map, not entry contents)
  std::unordered_map<std::string, std::unique_ptr<Entry>> Entries;
  std::atomic<uint64_t> Hits{0}, Misses{0};
};

} // namespace rpcc

#endif // RPCC_DRIVER_COMPILECACHE_H
