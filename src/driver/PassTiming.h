//===- driver/PassTiming.h - Pass/phase timing and metrics -----*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-compile timing and metrics registry: wall time per pipeline pass,
/// static IL operation counts before and after each pass, and interpreter
/// time/steps. One TimingReport is produced per compile job; reports from
/// many jobs (the suite's 56 cells, a fuzz campaign's seeds) merge into one
/// aggregate, which renders either as a human-readable table (`--timing`)
/// or as JSON (`--timing-json`).
///
/// Collection is off by default (CompilerConfig::CollectTiming) so the fuzz
/// and test hot paths pay nothing; when on, the cost is one clock read and
/// one O(module) instruction count per pass.
///
//===----------------------------------------------------------------------===//

#ifndef RPCC_DRIVER_PASSTIMING_H
#define RPCC_DRIVER_PASSTIMING_H

#include <cstdint>
#include <string>
#include <vector>

namespace rpcc {

class Module;

/// Wall time and IL size change of one pipeline pass (possibly summed over
/// several invocations and several compile jobs).
struct PassTime {
  std::string Name;
  double Millis = 0;
  uint64_t OpsBefore = 0; ///< static IL operations when the pass started
  uint64_t OpsAfter = 0;  ///< static IL operations when it finished
  uint64_t Invocations = 1;
};

/// Timing for one compile-and-run job, or (after merge) an aggregate over
/// many jobs.
struct TimingReport {
  /// Pipeline passes in first-execution order; same-named entries are
  /// folded together (cleanup and CFG normalization run more than once).
  std::vector<PassTime> Passes;
  double CompileMillis = 0; ///< whole-pipeline wall time
  double InterpMillis = 0;  ///< interpreter wall time
  uint64_t InterpSteps = 0; ///< dynamic operations executed
  uint64_t Compiles = 0;    ///< compile jobs folded into this report
  /// Wall time spent in the config-independent prefix (lex/parse/sema/
  /// lowering/CFG normalization plus alias analysis) versus the
  /// config-dependent suffix (promotion, scalar opts, register allocation).
  /// With the compile cache on, prefix time accrues once per (program,
  /// analysis) inside the cache while every cell accrues its own suffix
  /// time, so FrontendMillis + SuffixMillis can be far below
  /// Compiles * average CompileMillis.
  double FrontendMillis = 0;
  double SuffixMillis = 0;
  /// Compile-cache outcomes: a hit reused a cached analyzed module, a miss
  /// built one. Both stay zero when compiling without a cache.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// ThreadPool utilization over the run that produced this report:
  /// parallelFor iterations executed and the wall time they consumed across
  /// all workers (the utilization numerator; divide by run wall time for
  /// average busy workers). Populated by the CLI drivers from the metrics
  /// registry, so --timing-json consumers see pool health without adopting
  /// --metrics-json. Zero when nothing ran through a parallelFor.
  uint64_t PoolItems = 0;
  double PoolBusyMillis = 0;
  /// interpEngineName of the engine the run(s) used; empty when nothing was
  /// interpreted. Merging keeps the first non-empty name (one aggregate is
  /// always produced by one engine; the suite never mixes them).
  std::string Engine;

  /// Records one pass sample, folding into an existing same-named entry.
  void addPass(const std::string &Name, double Millis, uint64_t OpsBefore,
               uint64_t OpsAfter);

  /// Folds \p O into this report: totals add up, same-named passes merge
  /// (first-seen order is kept, new names append). Deterministic given the
  /// merge order, which callers keep in job-submission order.
  void merge(const TimingReport &O);
};

/// Counts static IL instructions across every function of \p M.
uint64_t countStaticOps(const Module &M);

/// Monotonic timestamp in milliseconds, for timing interpreter runs at the
/// call site.
double timingNowMs();

/// Renders the aggregate as an aligned table plus compile/interpret totals.
/// Passes print in canonical pipeline order (unknown names last, sorted by
/// name), so the rendering is independent of the job-completion order that
/// fed the merge.
std::string formatTimingReport(const TimingReport &R);

/// Renders the aggregate as a single JSON object, passes in the same
/// canonical order as formatTimingReport:
/// {"compiles":N,"compile_ms":..,"interp_ms":..,"interp_steps":..,
///  "frontend_ms":..,"suffix_ms":..,"cache_hits":N,"cache_misses":N,
///  "pool_items":N,"pool_busy_ms":..,
///  "passes":[{"name":..,"calls":..,"ms":..,"ops_before":..,"ops_after":..}]}
/// When \p JobsJson is non-empty (a JobLog::toJsonArray rendering from a
/// sandboxed run), it is embedded verbatim as a "jobs" key before "passes";
/// otherwise the key is absent and the output is byte-identical to before
/// sandboxing existed.
std::string formatTimingJson(const TimingReport &R,
                             const std::string &JobsJson = std::string());

} // namespace rpcc

#endif // RPCC_DRIVER_PASSTIMING_H
