/*
 * bc — a little stack-machine calculator core, standing in for the paper's
 * GNU bc (calculator language).
 *
 * Shape: a bytecode dispatch loop over a global operand stack. The
 * accumulator and instruction counter are global scalars whose addresses
 * escape into the error/tracing module, so MOD/REF cannot separate them
 * from the stack writes that go through pointers — but points-to can.
 * This reproduces the paper's bc rows, where pointer analysis visibly
 * beats MOD/REF (8.83% vs 27.52% of stores removed).
 */

int stack_mem[256];
int code[512];
int ncode;

int accum;      /* address escapes below */
int icount;     /* address escapes below */
int depth_hwm;

int err_count;
int err_pc;

/* The tracing/error module takes the addresses of the hot globals, making
 * them "addressed" and thus aliasable under MOD/REF. */
int *trace_cell(int which) {
    if (which == 0)
        return &accum;
    return &icount;
}

void report_error(int pc) {
    int *cell;
    cell = trace_cell(0);
    *cell = 0;
    err_count = err_count + 1;
    err_pc = pc;
}

/* opcodes */
/* 1 push-imm, 2 add, 3 sub, 4 mul, 5 dup, 6 drop, 7 acc-store, 8 acc-add */

void gen_program() {
    int i;
    int p;
    p = 0;
    for (i = 0; i < 40; i++) {
        code[p] = 1; p++; code[p] = i % 19; p++;
        code[p] = 1; p++; code[p] = (i * 3) % 13; p++;
        code[p] = 2 + i % 3; p++;        /* add/sub/mul */
        code[p] = 5; p++;                /* dup */
        code[p] = 8; p++;                /* acc += top */
        code[p] = 6; p++;                /* drop */
        if (i % 5 == 0) { code[p] = 7; p++; } /* acc -> stack slot */
    }
    ncode = p;
}

/*
 * The dispatch loop. Stack slots are written through a pointer (sp-relative
 * addressing through a local pointer), while accum/icount are explicit
 * global references. Under MOD/REF the pointer stores may hit accum, so
 * promotion is blocked; under points-to the stores provably stay inside
 * stack_mem, and accum/icount promote for the whole run() loop.
 */
int run() {
    int pc;
    int sp;
    int op;
    int a;
    int b;
    int fail_pc;
    int *slot;

    pc = 0;
    sp = 0;
    fail_pc = -1;
    while (pc < ncode) {
        op = code[pc];
        pc = pc + 1;
        icount = icount + 1;
        if (op == 1) {
            slot = &stack_mem[sp];
            *slot = code[pc];
            pc = pc + 1;
            sp = sp + 1;
        } else if (op == 2) {
            a = stack_mem[sp - 1];
            b = stack_mem[sp - 2];
            sp = sp - 1;
            slot = &stack_mem[sp - 1];
            *slot = a + b;
        } else if (op == 3) {
            a = stack_mem[sp - 1];
            b = stack_mem[sp - 2];
            sp = sp - 1;
            slot = &stack_mem[sp - 1];
            *slot = b - a;
        } else if (op == 4) {
            a = stack_mem[sp - 1];
            b = stack_mem[sp - 2];
            sp = sp - 1;
            slot = &stack_mem[sp - 1];
            *slot = a * b;
        } else if (op == 5) {
            slot = &stack_mem[sp];
            *slot = stack_mem[sp - 1];
            sp = sp + 1;
        } else if (op == 6) {
            sp = sp - 1;
        } else if (op == 7) {
            slot = &stack_mem[sp];
            *slot = accum;
            sp = sp + 1;
        } else if (op == 8) {
            accum = accum + stack_mem[sp - 1];
        } else {
            fail_pc = pc;
            break;
        }
        if (sp > depth_hwm)
            depth_hwm = sp;
        if (sp < 0 || sp >= 250) {
            fail_pc = pc;
            break;
        }
    }
    /* Error reporting stays outside the dispatch loop so the hot globals
     * are not ambiguous inside it. */
    if (fail_pc >= 0) {
        report_error(fail_pc);
        return -1;
    }
    return sp;
}

int main() {
    int rep;
    int leftover;

    gen_program();
    accum = 0;
    icount = 0;
    leftover = 0;
    for (rep = 0; rep < 25; rep++)
        leftover = run();

    print_int(accum);
    print_char(' ');
    print_int(icount);
    print_char(' ');
    print_int(depth_hwm);
    print_char(' ');
    print_int(leftover);
    print_char('\n');
    return (accum + icount) % 229;
}
