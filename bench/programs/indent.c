/*
 * indent — a C prettyprinter core, standing in for the paper's 5,955-line
 * indent.
 *
 * Shape: a character-driven formatter whose global state (brace depth,
 * parenthesis depth, comment/string modes, output column, line count) is
 * read and written on every token. The paper reports ~4% of stores
 * removed for indent, identical under both analyses.
 */

char src[4096];
char out[8192];

int brace_depth;
int paren_depth;
int in_comment;
int in_string;
int column;
int out_lines;
int out_pos;
int max_depth;

void synth_source() {
    int i;
    int p;
    p = 0;
    for (i = 0; i < 120; i++) {
        /* A little function skeleton repeated with variations. */
        src[p] = 'f'; p++;
        src[p] = '0' + i % 10; p++;
        src[p] = '('; p++;
        src[p] = ')'; p++;
        src[p] = '{'; p++;
        src[p] = 'x'; p++;
        src[p] = '='; p++;
        src[p] = '0' + (i * 3) % 10; p++;
        src[p] = ';'; p++;
        if (i % 4 == 0) {
            src[p] = '/'; p++;
            src[p] = '*'; p++;
            src[p] = 'c'; p++;
            src[p] = '*'; p++;
            src[p] = '/'; p++;
        }
        if (i % 3 == 0) {
            src[p] = '('; p++;
            src[p] = 'y'; p++;
            src[p] = ')'; p++;
        }
        src[p] = '}'; p++;
        src[p] = '\n'; p++;
    }
    src[p] = 0;
}

void emit(int c) {
    out[out_pos] = c;
    out_pos = out_pos + 1;
    if (c == '\n') {
        out_lines = out_lines + 1;
        column = 0;
    } else {
        column = column + 1;
    }
}

void emit_indent() {
    int k;
    for (k = 0; k < brace_depth; k++) {
        emit(' ');
        emit(' ');
    }
}

/*
 * The hot loop: one pass over the source, with the formatter state
 * globals live across every character.
 */
void format_source() {
    int i;
    int c;
    int prev;

    prev = 0;
    for (i = 0; src[i] != 0; i++) {
        c = src[i];
        if (in_comment) {
            emit(c);
            if (prev == '*' && c == '/')
                in_comment = 0;
        } else if (in_string) {
            emit(c);
            if (c == '"')
                in_string = 0;
        } else if (prev == '/' && c == '*') {
            in_comment = 1;
            emit(c);
        } else if (c == '"') {
            in_string = 1;
            emit(c);
        } else if (c == '{') {
            brace_depth = brace_depth + 1;
            if (brace_depth > max_depth)
                max_depth = brace_depth;
            emit(c);
            emit('\n');
            emit_indent();
        } else if (c == '}') {
            brace_depth = brace_depth - 1;
            emit('\n');
            emit_indent();
            emit(c);
        } else if (c == '(') {
            paren_depth = paren_depth + 1;
            emit(c);
        } else if (c == ')') {
            paren_depth = paren_depth - 1;
            emit(c);
        } else if (c == ';') {
            emit(c);
            emit('\n');
            emit_indent();
        } else {
            emit(c);
        }
        prev = c;
    }
}

int main() {
    int pass;

    synth_source();
    for (pass = 0; pass < 3; pass++) {
        brace_depth = 0;
        paren_depth = 0;
        in_comment = 0;
        in_string = 0;
        column = 0;
        out_lines = 0;
        out_pos = 0;
        format_source();
    }

    print_int(out_lines);
    print_char(' ');
    print_int(out_pos);
    print_char(' ');
    print_int(max_depth);
    print_char('\n');
    return (out_lines + out_pos) % 241;
}
