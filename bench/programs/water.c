/*
 * water — molecular-dynamics step in the SPEC/SPLASH "water" mold,
 * standing in for the paper's 19,842-line water.
 *
 * Shape: the paper's register-pressure anecdote — "register promotion was
 * able to promote twenty-eight values for one loop nest. Unfortunately,
 * this caused the register allocator to spill values which resulted in a
 * performance loss compared to no register promotion." The accumulate
 * nest below references 28 global scalars (potential-energy partial sums,
 * virial components, box bookkeeping) together with enough loop-local
 * state to overflow a 32-register file once everything is promoted.
 */

float pos_x[64];
float pos_y[64];
float pos_z[64];
float vel_x[64];
float vel_y[64];
float vel_z[64];

/* The 28-value loop-nest state (paper's anecdote). */
float pot_oo; float pot_oh; float pot_hh; float pot_intra;
float vir_xx; float vir_yy; float vir_zz;
float vir_xy; float vir_xz; float vir_yz;
float kin_x;  float kin_y;  float kin_z;
float com_x;  float com_y;  float com_z;
float drift_x; float drift_y; float drift_z;
float box_scale; float cutoff_acc; float shift_acc;
int pair_count; int near_count; int far_count;
int step_no; int accept_no; int reject_no;

int nmol;

void init_molecules() {
    int i;
    nmol = 56;
    for (i = 0; i < nmol; i++) {
        pos_x[i] = (float)(i % 8) * 1.1;
        pos_y[i] = (float)(i / 8) * 0.9;
        pos_z[i] = (float)(i % 5) * 1.3;
        vel_x[i] = 0.01 * (float)(i % 3 - 1);
        vel_y[i] = 0.02 * (float)(i % 5 - 2);
        vel_z[i] = 0.015 * (float)(i % 7 - 3);
    }
}

/*
 * The pressure cooker: one O(n^2) pairwise sweep updating all 28 global
 * scalars. Every one of them is explicitly referenced and never aliased,
 * so the promoter lifts all of them; with K=32 the allocator then has to
 * spill, exactly as the paper describes.
 */
void accumulate_forces() {
    int i;
    int j;
    float dx;
    float dy;
    float dz;
    float r2;
    float inv;
    float e;

    for (i = 0; i < nmol; i++) {
        for (j = i + 1; j < nmol; j++) {
            dx = pos_x[i] - pos_x[j];
            dy = pos_y[i] - pos_y[j];
            dz = pos_z[i] - pos_z[j];
            r2 = dx * dx + dy * dy + dz * dz + 0.25;
            inv = 1.0 / r2;
            e = inv * inv - inv;

            pot_oo = pot_oo + e;
            pot_oh = pot_oh + e * 0.5;
            pot_hh = pot_hh + e * 0.25;
            pot_intra = pot_intra + inv * 0.125;
            vir_xx = vir_xx + dx * dx * inv;
            vir_yy = vir_yy + dy * dy * inv;
            vir_zz = vir_zz + dz * dz * inv;
            vir_xy = vir_xy + dx * dy * inv;
            vir_xz = vir_xz + dx * dz * inv;
            vir_yz = vir_yz + dy * dz * inv;
            kin_x = kin_x + vel_x[i] * vel_x[j];
            kin_y = kin_y + vel_y[i] * vel_y[j];
            kin_z = kin_z + vel_z[i] * vel_z[j];
            com_x = com_x + dx;
            com_y = com_y + dy;
            com_z = com_z + dz;
            drift_x = drift_x + dx * 0.001;
            drift_y = drift_y + dy * 0.001;
            drift_z = drift_z + dz * 0.001;
            box_scale = box_scale + e * 0.0001;
            cutoff_acc = cutoff_acc + inv * 0.01;
            shift_acc = shift_acc + e * inv;
            pair_count = pair_count + 1;
            if (r2 < 1.5)
                near_count = near_count + 1;
            else
                far_count = far_count + 1;
            step_no = step_no + 1;
            if (e < 0.0)
                accept_no = accept_no + 1;
            else
                reject_no = reject_no + 1;
        }
    }
}

int main() {
    int step;
    float total;

    init_molecules();
    for (step = 0; step < 6; step++)
        accumulate_forces();

    total = pot_oo + pot_oh + pot_hh + pot_intra + vir_xx + vir_yy +
            vir_zz + vir_xy + vir_xz + vir_yz + kin_x + kin_y + kin_z +
            com_x + com_y + com_z + drift_x + drift_y + drift_z +
            box_scale + cutoff_acc + shift_acc;

    print_int(pair_count);
    print_char(' ');
    print_int(near_count);
    print_char(' ');
    print_int(accept_no);
    print_char(' ');
    print_int((int)total);
    print_char('\n');
    return (pair_count + near_count) % 233;
}
