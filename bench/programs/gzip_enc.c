/*
 * gzip_enc — an LZ77-style hash-chain compressor, standing in for the
 * compression half of the paper's 7,331-line gzip.
 *
 * Shape: a byte-crunching loop over global buffers with global bit-output
 * and match-statistics counters referenced per literal/match. The paper
 * reports a modest whole-program win for gzip(enc): 1.75% of operations
 * under MOD/REF and 2.15% under points-to.
 */

char text[8192];
char packed[12288];
int head_tab[256];
int prev_tab[8192];

int in_len;
int out_pos;
int bits_pending;
int literals;
int matches;
int match_bytes;

void synth_text() {
    int i;
    int j;
    int p;
    p = 0;
    /* Repetitive-but-not-trivial text: cycling phrases with noise. */
    for (i = 0; i < 160; i++) {
        for (j = 0; j < 12; j++) {
            text[p] = 'a' + (j * 5 + i % 3) % 26;
            p = p + 1;
        }
        for (j = 0; j < 12; j++) {
            text[p] = 'a' + (j + i * 7) % 26;
            p = p + 1;
        }
        text[p] = ' ';
        p = p + 1;
    }
    in_len = p;
}

int hash_at(int pos) {
    int h;
    h = text[pos] * 31 + text[pos + 1] * 7 + text[pos + 2];
    if (h < 0)
        h = -h;
    return h % 256;
}

void put_byte(int b) {
    packed[out_pos] = b;
    out_pos = out_pos + 1;
    bits_pending = bits_pending + 8;
}

int match_length(int cand, int pos, int limit) {
    int len;
    len = 0;
    while (len < 18 && pos + len < limit &&
           text[cand + len] == text[pos + len])
        len = len + 1;
    return len;
}

/* Threads positions pos..pos+len-1 into the hash chains. */
int insert_hashes(int pos, int len) {
    int h;
    while (len > 0) {
        h = hash_at(pos);
        prev_tab[pos] = head_tab[h];
        head_tab[h] = pos;
        pos = pos + 1;
        len = len - 1;
    }
    return pos;
}

/* Walks the hash chain for position pos; returns best_off * 32 + best_len
 * (gzip's longest_match, with the result packed into one register). */
int longest_match(int pos, int h) {
    int cand;
    int len;
    int best_len;
    int best_off;
    int tries;

    cand = head_tab[h];
    best_len = 0;
    best_off = 0;
    tries = 0;
    while (cand >= 0 && tries < 8 && pos - cand < 4096) {
        len = match_length(cand, pos, in_len);
        if (len > best_len) {
            best_len = len;
            best_off = pos - cand;
        }
        cand = prev_tab[cand];
        tries = tries + 1;
    }
    return best_off * 32 + best_len;
}

/*
 * The hot loop: hash-chain match search plus token emission, with the
 * global counters live throughout.
 */
void compress() {
    int pos;
    int h;
    int best;
    int best_len;
    int best_off;
    int k;

    for (k = 0; k < 256; k++)
        head_tab[k] = -1;

    pos = 0;
    while (pos + 3 < in_len) {
        h = hash_at(pos);
        best = longest_match(pos, h);
        best_len = best % 32;
        best_off = best / 32;
        if (best_len >= 4) {
            /* match token: flag, offset, length */
            put_byte(255);
            put_byte(best_off % 256);
            put_byte(best_off / 256 * 16 + best_len);
            matches = matches + 1;
            match_bytes = match_bytes + best_len;
            pos = insert_hashes(pos, best_len);
        } else {
            put_byte(text[pos]);
            literals = literals + 1;
            prev_tab[pos] = head_tab[h];
            head_tab[h] = pos;
            pos = pos + 1;
        }
    }
    while (pos < in_len) {
        put_byte(text[pos]);
        literals = literals + 1;
        pos = pos + 1;
    }
}

int main() {
    synth_text();
    out_pos = 0;
    compress();

    print_int(in_len);
    print_char(' ');
    print_int(out_pos);
    print_char(' ');
    print_int(literals);
    print_char(' ');
    print_int(matches);
    print_char(' ');
    print_int(match_bytes);
    print_char('\n');
    return (out_pos + matches) % 163;
}
