/*
 * bison — an LR shift/reduce driver, standing in for the paper's 10,179-
 * line LR(1) parser generator.
 *
 * Shape: the paper's second degradation anecdote — "in bison, values were
 * promoted that were only accessed on an error condition". The parse loop
 * below touches err_count/err_state only on a recovery path that never
 * runs in this input, yet both qualify for promotion, so the promoted
 * version pays the landing-pad load and exit store for nothing. Effects
 * on loads/stores are tiny; total operations tick slightly the wrong way.
 */

int action_tab[64];
int goto_tab[64];
int input_syms[512];
int ninput;

int state_stack[128];
int reductions;
int shifts;

/* Touched only on the (never-taken) error path inside the parse loop. */
int err_count;
int err_state;
int err_sym;

void build_tables() {
    int i;
    for (i = 0; i < 64; i++) {
        /* positive: shift to state; negative: reduce by rule; 0: error */
        if (i % 7 == 3)
            action_tab[i] = -(1 + i % 5);
        else
            action_tab[i] = 1 + (i * 3) % 31;
        goto_tab[i] = (i * 5 + 2) % 32;
    }
    ninput = 480;
    for (i = 0; i < ninput; i++)
        input_syms[i] = 1 + (i * 13 + i / 7) % 29; /* never hits error */
}

int parse() {
    int pos;
    int sp;
    int state;
    int sym;
    int act;
    int nreduce;
    int nerr0;

    sp = 0;
    state = 1;
    nreduce = 0;
    nerr0 = err_count;
    state_stack[0] = state;
    for (pos = 0; pos < ninput; pos++) {
        sym = input_syms[pos];
        act = action_tab[(state + sym) % 64];
        if (act > 0) {
            /* shift */
            state = act % 32;
            sp = sp + 1;
            if (sp >= 127)
                sp = 64; /* recycle the stack for this synthetic run */
            state_stack[sp] = state;
        } else if (act < 0) {
            /* reduce */
            sp = sp - (-act) % 3;
            if (sp < 0)
                sp = 0;
            state = goto_tab[(state_stack[sp] + sym) % 64];
            nreduce = nreduce + 1;
        } else {
            /* error recovery: never reached on this input, but its globals
             * are promoted around the loop anyway. */
            err_count = err_count + 1;
            err_state = state;
            err_sym = sym;
            state = 1;
            sp = 0;
        }
    }
    /* every symbol is a shift, a reduce, or an error */
    shifts = shifts + (ninput - nreduce - (err_count - nerr0));
    reductions = reductions + nreduce;
    return sp;
}

/*
 * Item-set closure computation — where the real bison spends most of its
 * time. Array-dominated with register-resident locals, so promotion is a
 * bystander here; it dilutes the parse loop the way the real program's
 * table construction does.
 */
int closure_sets[64][64];

int compute_closures() {
    int s;
    int t;
    int round;
    int changed;
    int added;

    added = 0;
    for (s = 0; s < 64; s++)
        for (t = 0; t < 64; t++)
            closure_sets[s][t] = (s == t) ? 1 : 0;
    for (round = 0; round < 6; round++) {
        changed = 0;
        for (s = 0; s < 64; s++) {
            for (t = 0; t < 64; t++) {
                if (closure_sets[s][t] &&
                    !closure_sets[s][goto_tab[t] % 64]) {
                    closure_sets[s][goto_tab[t] % 64] = 1;
                    changed = changed + 1;
                }
            }
        }
        added = added + changed;
        if (changed == 0)
            round = 6;
    }
    return added;
}

int main() {
    int rep;
    int final_sp;
    int nclosed;

    build_tables();
    final_sp = 0;
    nclosed = 0;
    for (rep = 0; rep < 20; rep++) {
        nclosed = nclosed + compute_closures();
        final_sp = final_sp + parse();
    }

    print_int(shifts);
    print_char(' ');
    print_int(reductions);
    print_char(' ');
    print_int(err_count);
    print_char(' ');
    print_int(final_sp);
    print_char(' ');
    print_int(nclosed);
    print_char('\n');
    return (shifts + reductions) % 181;
}
