/*
 * clean — a text cleaner (whitespace squeezing, line accounting, word
 * counting), standing in for the paper's 7,583-line "clean".
 *
 * Shape: one pass over a character buffer with half a dozen global state
 * scalars touched on every character. The paper reports a solid store
 * reduction for clean (~3.3%), equal under both analyses.
 */

char input[4096];
char output[4096];

int nlines;
int nwords;
int nchars;
int nsqueezed;
int inword;
int outpos;

void synth_input() {
    int i;
    int c;
    for (i = 0; i < 4000; i++) {
        c = (i * 31 + i / 17) % 97;
        if (c < 8)
            input[i] = ' ';
        else if (c < 10)
            input[i] = '\t';
        else if (c < 13)
            input[i] = '\n';
        else
            input[i] = 'a' + c % 26;
    }
    input[4000] = 0;
}

int is_space(int c) {
    return c == ' ' || c == '\t';
}

/*
 * The hot loop: every iteration reads and writes the global counters, so
 * promotion lifts them into registers for the whole scan.
 */
void clean_text() {
    int i;
    int c;
    int pending;

    pending = 0;
    inword = 0;
    outpos = 0;
    for (i = 0; input[i] != 0; i++) {
        c = input[i];
        nchars = nchars + 1;
        if (c == '\n') {
            nlines = nlines + 1;
            inword = 0;
            pending = 0;
            output[outpos] = '\n';
            outpos = outpos + 1;
        } else if (is_space(c)) {
            if (pending) {
                nsqueezed = nsqueezed + 1;
            } else {
                pending = 1;
            }
            inword = 0;
        } else {
            if (pending && outpos > 0) {
                output[outpos] = ' ';
                outpos = outpos + 1;
                pending = 0;
            }
            if (!inword) {
                nwords = nwords + 1;
                inword = 1;
            }
            output[outpos] = c;
            outpos = outpos + 1;
        }
    }
    output[outpos] = 0;
}

int main() {
    int pass;

    synth_input();
    for (pass = 0; pass < 4; pass++) {
        nlines = 0;
        nwords = 0;
        nchars = 0;
        nsqueezed = 0;
        clean_text();
    }

    print_int(nlines);
    print_char(' ');
    print_int(nwords);
    print_char(' ');
    print_int(nchars);
    print_char(' ');
    print_int(nsqueezed);
    print_char('\n');
    return (nwords + nsqueezed) % 199;
}
