/*
 * mlink — genetic-linkage likelihood computation, standing in for the
 * paper's 28,553-line mlink (the biggest winner in the evaluation).
 *
 * Shape: deep loop nests over pedigree members and locus genotypes that
 * update global scalar accumulators on every iteration. The paper reports
 * the largest effect of the whole suite here — 57% of stores and ~26% of
 * loads removed ("register promotion removed 2.8 million loads from one
 * function in mlink"), nearly identical under MOD/REF and points-to.
 */

int npeople;
int nloci;
int ngenotypes;

float genefreq[8];
float penetrance[8];
int genotype[64];
int parent1[64];
int parent2[64];

/* The promotable global state: referenced on every inner iteration. */
float liketotal;
float scale;
int evaluations;
int underflows;

void init_pedigree() {
    int i;
    npeople = 48;
    nloci = 6;
    ngenotypes = 8;
    for (i = 0; i < ngenotypes; i++) {
        genefreq[i] = 1.0 / (float)(i + 2);
        penetrance[i] = (float)(i + 1) / (float)(ngenotypes + 1);
    }
    for (i = 0; i < npeople; i++) {
        genotype[i] = i % ngenotypes;
        parent1[i] = i / 2;
        parent2[i] = i / 3;
    }
}

float transmission(int gp, int gc) {
    if (gp == gc)
        return 0.5;
    return 0.5 / (float)ngenotypes;
}

/*
 * The hot function: for every person, locus, and candidate genotype pair,
 * fold a likelihood term into the global accumulators. liketotal, scale,
 * and evaluations are explicit scalar references in the innermost loop and
 * never aliased, so promotion keeps all three in registers across the
 * whole nest.
 */
void peel_likelihood() {
    int person;
    int locus;
    int g1;
    int g2;
    int gp1;
    int gp2;
    float term;

    for (person = 0; person < npeople; person++) {
        /* hand-hoisted parent lookups, as the original C would have */
        gp1 = genotype[parent1[person]];
        gp2 = genotype[parent2[person]];
        for (locus = 0; locus < nloci; locus++) {
            for (g1 = 0; g1 < ngenotypes; g1++) {
                for (g2 = 0; g2 < ngenotypes; g2++) {
                    term = genefreq[g1] * genefreq[g2] * penetrance[g2] *
                           transmission(gp1, g1) *
                           transmission(gp2, g2);
                    liketotal = liketotal + term;
                    evaluations = evaluations + 1;
                    if (liketotal > 1000.0) {
                        liketotal = liketotal / 1024.0;
                        scale = scale + 1.0;
                        underflows = underflows + 1;
                    }
                }
            }
        }
    }
}

int main() {
    int rep;

    init_pedigree();
    liketotal = 0.0;
    scale = 0.0;
    evaluations = 0;
    underflows = 0;

    for (rep = 0; rep < 3; rep++)
        peel_likelihood();

    print_int(evaluations);
    print_char(' ');
    print_int(underflows);
    print_char(' ');
    print_int((int)(liketotal * 1000.0));
    print_char('\n');
    return evaluations % 211;
}
