/*
 * sim — local sequence alignment in the Smith-Waterman style, standing in
 * for the paper's "sim".
 *
 * Shape: the dynamic-programming recurrence is array-dominated and keeps
 * its running maxima in locals, so — like the paper's sim row, which shows
 * 0.00% everywhere — register promotion finds essentially nothing.
 */

char seq_a[256];
char seq_b[256];
int score_row[257];
int best_score;
int best_i;
int best_j;

void make_sequences() {
    int i;
    for (i = 0; i < 256; i++) {
        seq_a[i] = 'a' + (i * 7 + 3) % 4;
        seq_b[i] = 'a' + (i * 11 + 1) % 4;
    }
}

/* Substitution matrix over the four-letter alphabet (read-only data: the
 * front end emits cLoads for it, exercising Table 1's constant tier). */
const int SUB[16] = {3, -1, -1, -2,
                     -1, 3, -2, -1,
                     -1, -2, 3, -1,
                     -2, -1, -1, 3};

int score(int x, int y) {
    return SUB[(x - 'a') * 4 + (y - 'a')];
}

/*
 * One DP pass with a rolling row. All recurrence state (diag, up, left,
 * cell, runbest) lives in locals; the only global writes happen once per
 * row at most.
 */
void align(int na, int nb) {
    int i;
    int j;
    int diag;
    int up;
    int cell;
    int prev_diag;
    int runbest;
    int runi;
    int runj;

    runbest = 0;
    runi = 0;
    runj = 0;
    for (j = 0; j <= nb; j++)
        score_row[j] = 0;
    int ca;
    for (i = 1; i <= na; i++) {
        prev_diag = score_row[0];
        score_row[0] = 0;
        ca = seq_a[i - 1]; /* hand-hoisted, as the original C would have */
        for (j = 1; j <= nb; j++) {
            diag = prev_diag + score(ca, seq_b[j - 1]);
            up = score_row[j] - 2;
            cell = score_row[j - 1] - 2;
            if (up > cell) cell = up;
            if (diag > cell) cell = diag;
            if (cell < 0) cell = 0;
            prev_diag = score_row[j];
            score_row[j] = cell;
            if (cell > runbest) {
                runbest = cell;
                runi = i;
                runj = j;
            }
        }
    }
    if (runbest > best_score) {
        best_score = runbest;
        best_i = runi;
        best_j = runj;
    }
}

int main() {
    make_sequences();
    best_score = 0;
    align(200, 200);
    align(256, 128);

    print_int(best_score);
    print_char(' ');
    print_int(best_i);
    print_char(' ');
    print_int(best_j);
    print_char('\n');
    return best_score % 127;
}
