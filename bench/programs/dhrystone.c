/*
 * dhrystone — a synthetic integer benchmark in the Dhrystone mold.
 *
 * Shape: reproduces the paper's degradation anecdote — "in dhrystone,
 * values were promoted in a loop that always executed once". proc_once
 * contains such a loop over global scalars: promotion dutifully inserts
 * the landing-pad load and exit store around a single iteration, a small
 * net loss, while the main measurement loop is register-resident already.
 */

int int_glob;
int bool_glob;
char ch_1_glob;
char ch_2_glob;
int arr_1_glob[50];
int arr_2_glob[50];

int one_shot_a;
int one_shot_b;
int one_shot_c;

int func_1(int ch_1, int ch_2) {
    if (ch_1 == ch_2)
        return 0;
    return 1;
}

int func_2(int v) {
    if (v > 25)
        return v % 26;
    return v;
}

void proc_1(int v) {
    int_glob = v + func_2(v);
    if (int_glob > 100)
        int_glob = int_glob - 100;
}

void proc_2(int idx) {
    arr_1_glob[idx] = idx * 2;
    arr_2_glob[idx] = arr_1_glob[idx] + idx;
}

/*
 * The paper's case: this loop runs exactly once per call, yet all three
 * globals qualify for promotion, so the promoted version pays a
 * landing-pad load and exit store for each of them around a single trip
 * that only ever touches one branch's worth of state.
 */
void proc_once(int flag) {
    int iter;
    for (iter = 0; iter < 1; iter++) {
        if (flag > 0)
            one_shot_a = one_shot_a + flag;
        else if (flag < 0)
            one_shot_b = one_shot_b + 1;
        else
            one_shot_c = one_shot_c + 1;
    }
}

int main() {
    int run;
    int loops;
    int sum;

    loops = 3000;
    sum = 0;
    for (run = 0; run < loops; run++) {
        proc_1(run % 97);
        proc_2(run % 50);
        sum = sum + func_1('a' + run % 26, 'c');
        if (run % 25 == 0)
            proc_once(run % 3 - 1);
    }
    bool_glob = sum > 0;
    ch_1_glob = 'x';
    ch_2_glob = 'y';

    print_int(int_glob);
    print_char(' ');
    print_int(one_shot_a + one_shot_b + one_shot_c);
    print_char(' ');
    print_int(sum);
    print_char('\n');
    return (sum + int_glob) % 222;
}
