/*
 * fft — fast Fourier transform, standing in for the paper's 760-line fft.
 *
 * Two of the paper's anecdotes live here:
 *
 *   1. "An example where pointer analysis was required to promote a value
 *      arose in fft": the scale_pass kernel below is the paper's own code
 *      shape — T1 is a global whose address is taken elsewhere, and the
 *      stores through the x2 parameter can only be separated from T1 by
 *      points-to analysis. Under MOD/REF alone T1 stays in memory.
 *
 *   2. fft is the one program where §3.3 pointer-based promotion wins:
 *      in the butterfly loops the element *(data + j) is re-referenced
 *      through a loop-invariant base.
 */

float re[256];
float im[256];
float wre[256];
float wim[256];

float X1[256];
float X2[256];
float X3[256];

float T1; /* the paper's T1: address exposed below */
int KT;

int nbits;
int nsize;

/* T1's address escapes here, making it ambiguous under MOD/REF. */
float *t1_addr() {
    return &T1;
}

void init_signal() {
    int i;
    nsize = 256;
    nbits = 8;
    for (i = 0; i < nsize; i++) {
        re[i] = sin(6.28318 * (float)i / 32.0);
        im[i] = 0.0;
        wre[i] = cos(6.28318 * (float)i / (float)nsize);
        wim[i] = 0.0 - sin(6.28318 * (float)i / (float)nsize);
        X1[i] = (float)(i % 7);
        X3[i] = 1.0 + (float)(i % 3);
    }
    KT = 2;
}

int bitrev(int x, int bits) {
    int r;
    int b;
    r = 0;
    for (b = 0; b < bits; b++) {
        r = r * 2 + x % 2;
        x = x / 2;
    }
    return r;
}

void reorder() {
    int i;
    int j;
    float t;
    for (i = 0; i < nsize; i++) {
        j = bitrev(i, nbits);
        if (j > i) {
            t = re[i]; re[i] = re[j]; re[j] = t;
            t = im[i]; im[i] = im[j]; im[j] = t;
        }
    }
}

/* Iterative radix-2 butterflies. */
void transform() {
    int len;
    int half;
    int stride;
    int base;
    int k;
    int widx;
    float tr;
    float ti;
    float ur;
    float ui;

    len = 2;
    while (len <= nsize) {
        half = len / 2;
        stride = nsize / len;
        for (base = 0; base < nsize; base += len) {
            for (k = 0; k < half; k++) {
                widx = k * stride;
                tr = wre[widx] * re[base + half + k]
                   - wim[widx] * im[base + half + k];
                ti = wre[widx] * im[base + half + k]
                   + wim[widx] * re[base + half + k];
                ur = re[base + k];
                ui = im[base + k];
                re[base + k] = ur + tr;
                im[base + k] = ui + ti;
                re[base + half + k] = ur - tr;
                im[base + half + k] = ui - ti;
            }
        }
        len = len * 2;
    }
}

/*
 * The paper's kernel (section 5), lightly adapted:
 *
 *   for (...) { T1 = pow(X3[index3], KT);
 *               X2[index1] = T1 * X1[index1];
 *               X2[index1+N1] = T1 * X1[index1+N1]; }
 *
 * T1's address is taken elsewhere in this file; x1/x2/x3 arrive as
 * pointers. MOD/REF must assume the stores through x2 may modify T1;
 * points-to proves they cannot, so T1 promotes.
 */
void scale_pass(float *x2, float *x1, float *x3, int n3, int n1) {
    int i;
    int j;
    int k;
    int index1;
    int index3;

    for (i = 0; i < 2; i++) {
        for (j = 0; j < n3; j++) {
            for (k = 0; k < n1; k++) {
                index3 = (i * n3 + j) * n1 + k;
                index1 = (i * n3 + j) * n1 * 2 + k;
                T1 = pow(x3[index3], (float)KT);
                x2[index1] = T1 * x1[index1];
                x2[index1 + n1] = T1 * x1[index1 + n1];
            }
        }
    }
}

float Espec[32];

/*
 * Power-spectrum binning: Espec[b] accumulates over the inner loop through
 * an address that is invariant there — the Figure 3 pattern, and the place
 * where §3.3 pointer-based promotion scores its one significant success
 * ("In fft, the only significant success...").
 */
void bin_spectrum() {
    int b;
    int k;
    for (b = 0; b < 32; b++) {
        for (k = 0; k < 8; k++) {
            Espec[b] = Espec[b] + re[b * 8 + k] * re[b * 8 + k] +
                       im[b * 8 + k] * im[b * 8 + k];
        }
    }
}

int main() {
    int i;
    float checksum;
    float *escaped;

    init_signal();
    reorder();
    transform();
    scale_pass(X2, X1, X3, 8, 8);
    bin_spectrum();

    /* keep the address escape alive */
    escaped = t1_addr();
    *escaped = *escaped + 1.0;

    checksum = 0.0;
    for (i = 0; i < nsize; i++)
        checksum = checksum + re[i] * re[i] + im[i] * im[i];
    checksum = checksum + X2[10] + T1 + Espec[3] + Espec[17];

    print_int((int)checksum);
    print_char('\n');
    return ((int)checksum) % 173;
}
