/*
 * tsp — a traveling salesman problem (nearest-neighbor construction plus
 * 2-opt improvement), standing in for the paper's 760-line tsp.
 *
 * Shape: the hot loops walk coordinate arrays and keep their running state
 * in locals, so register promotion finds almost nothing to do here — the
 * paper reports 0.00% for tsp across the board.
 */

float xs[128];
float ys[128];
int visited[128];
int tour[129];
int ncities;

int rng_state;

int next_rand() {
    rng_state = (rng_state * 1103515245 + 12345) % 2147483647;
    if (rng_state < 0) rng_state = -rng_state;
    return rng_state;
}

void make_cities(int n) {
    int i;
    ncities = n;
    for (i = 0; i < n; i++) {
        xs[i] = (float)(next_rand() % 1000) / 10.0;
        ys[i] = (float)(next_rand() % 1000) / 10.0;
        visited[i] = 0;
    }
}

float dist(int a, int b) {
    float dx;
    float dy;
    dx = xs[a] - xs[b];
    dy = ys[a] - ys[b];
    return sqrt(dx * dx + dy * dy);
}

/* Greedy nearest-neighbor tour starting from city 0. */
float build_tour() {
    int step;
    int cur;
    int best;
    int c;
    float bestd;
    float d;
    float total;

    cur = 0;
    visited[0] = 1;
    tour[0] = 0;
    total = 0.0;
    for (step = 1; step < ncities; step++) {
        best = -1;
        bestd = 1.0e18;
        for (c = 0; c < ncities; c++) {
            if (!visited[c]) {
                d = dist(cur, c);
                if (d < bestd) {
                    bestd = d;
                    best = c;
                }
            }
        }
        visited[best] = 1;
        tour[step] = best;
        total = total + bestd;
        cur = best;
    }
    tour[ncities] = 0;
    return total + dist(cur, 0);
}

/* One pass of 2-opt edge uncrossing. */
float improve(float total) {
    int i;
    int j;
    int k;
    int tmp;
    float before;
    float after;

    for (i = 1; i < ncities - 2; i++) {
        for (j = i + 1; j < ncities - 1; j++) {
            before = dist(tour[i - 1], tour[i]) + dist(tour[j], tour[j + 1]);
            after = dist(tour[i - 1], tour[j]) + dist(tour[i], tour[j + 1]);
            if (after < before - 0.0001) {
                /* reverse tour[i..j] */
                k = j;
                while (i < k) {
                    tmp = tour[i];
                    /* no-op shuffle guard keeps indices honest */
                    tour[i] = tour[k];
                    tour[k] = tmp;
                    k = k - 1;
                    i = i + 1;
                }
                total = total - (before - after);
                i = 1;
                j = ncities;
            }
        }
    }
    return total;
}

int main() {
    float total;
    int rounds;
    int r;

    rng_state = 20260705;
    make_cities(96);
    total = build_tour();
    rounds = 2;
    for (r = 0; r < rounds; r++)
        total = improve(total);

    print_int((int)total);
    print_char('\n');
    return ((int)total) % 251;
}
