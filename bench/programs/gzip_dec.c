/*
 * gzip_dec — the matching decompressor for gzip_enc's token stream,
 * standing in for the decompression half of the paper's gzip.
 *
 * Shape: a table-driven decode loop whose global counters are touched on
 * every token, but whose inner copy loops are short. The paper's
 * gzip(dec) row is the interesting one: promotion removes a few stores
 * (1.06% MOD/REF, 1.89% points-to) yet total operations come out
 * marginally WORSE (-0.02%) — the landing-pad/exit traffic around short
 * loops costs more than it saves.
 */

char text[8192];
char packed[12288];
char unpacked[8192];

int in_len;
int out_pos;
int tokens;
int copies;
int literal_count;

/* === encoder (same as gzip_enc, to produce the input stream) === */

int head_tab[256];
int prev_tab[8192];
int enc_out;

void synth_text() {
    int i;
    int j;
    int p;
    p = 0;
    for (i = 0; i < 160; i++) {
        for (j = 0; j < 12; j++) {
            text[p] = 'a' + (j * 5 + i % 3) % 26;
            p = p + 1;
        }
        for (j = 0; j < 12; j++) {
            text[p] = 'a' + (j + i * 7) % 26;
            p = p + 1;
        }
        text[p] = ' ';
        p = p + 1;
    }
    in_len = p;
}

int hash_at(int pos) {
    int h;
    h = text[pos] * 31 + text[pos + 1] * 7 + text[pos + 2];
    if (h < 0)
        h = -h;
    return h % 256;
}

void emit(int b) {
    packed[enc_out] = b;
    enc_out = enc_out + 1;
}

/* Threads positions pos..pos+len-1 into the hash chains. */
int insert_hashes(int pos, int len) {
    int h;
    while (len > 0) {
        h = hash_at(pos);
        prev_tab[pos] = head_tab[h];
        head_tab[h] = pos;
        pos = pos + 1;
        len = len - 1;
    }
    return pos;
}

int match_length(int cand, int pos, int limit) {
    int len;
    len = 0;
    while (len < 18 && pos + len < limit &&
           text[cand + len] == text[pos + len])
        len = len + 1;
    return len;
}

void compress() {
    int pos;
    int h;
    int cand;
    int len;
    int best_len;
    int best_off;
    int tries;
    int k;

    for (k = 0; k < 256; k++)
        head_tab[k] = -1;
    pos = 0;
    while (pos + 3 < in_len) {
        h = hash_at(pos);
        cand = head_tab[h];
        best_len = 0;
        best_off = 0;
        tries = 0;
        while (cand >= 0 && tries < 8 && pos - cand < 4096) {
            len = match_length(cand, pos, in_len);
            if (len > best_len) {
                best_len = len;
                best_off = pos - cand;
            }
            cand = prev_tab[cand];
            tries = tries + 1;
        }
        if (best_len >= 4) {
            emit(255);
            emit(best_off % 256);
            emit(best_off / 256 * 16 + best_len);
            pos = insert_hashes(pos, best_len);
        } else {
            emit(text[pos]);
            prev_tab[pos] = head_tab[h];
            head_tab[h] = pos;
            pos = pos + 1;
        }
    }
    while (pos < in_len) {
        emit(text[pos]);
        pos = pos + 1;
    }
}

/* === the decoder under measurement === */

void decompress() {
    int ip;
    int b;
    int off;
    int lenbyte;
    int len;
    int src;

    ip = 0;
    out_pos = 0;
    while (ip < enc_out) {
        b = packed[ip];
        ip = ip + 1;
        tokens = tokens + 1;
        if (b == 255) {
            off = packed[ip];
            ip = ip + 1;
            lenbyte = packed[ip];
            ip = ip + 1;
            off = off + lenbyte / 16 * 256;
            len = lenbyte % 16;
            src = out_pos - off;
            copies = copies + 1;
            while (len > 0) {
                unpacked[out_pos] = unpacked[src];
                out_pos = out_pos + 1;
                src = src + 1;
                len = len - 1;
            }
        } else {
            unpacked[out_pos] = b;
            out_pos = out_pos + 1;
            literal_count = literal_count + 1;
        }
    }
}

int check_roundtrip() {
    int i;
    int bad;
    bad = 0;
    for (i = 0; i < in_len && i < out_pos; i++)
        if (unpacked[i] != text[i])
            bad = bad + 1;
    if (out_pos != in_len)
        bad = bad + 1000;
    return bad;
}

int main() {
    int bad;

    synth_text();
    compress();
    decompress();
    bad = check_roundtrip();

    print_int(enc_out);
    print_char(' ');
    print_int(out_pos);
    print_char(' ');
    print_int(tokens);
    print_char(' ');
    print_int(copies);
    print_char(' ');
    print_int(bad);
    print_char('\n');
    return bad == 0 ? (tokens % 151) : 255;
}
