/*
 * allroots — a polynomial root finder (deflation with Newton iterations),
 * standing in for the paper's 215-line allroots.
 *
 * Shape: nearly straight-line numeric code whose working state lives in
 * locals; globals are written only to record results. The paper shows 11
 * stores total for allroots and 0.00% everywhere — promotion has nothing
 * to chew on, and the program verifies that the transformation does no
 * harm on tiny codes.
 */

float coeff[8];
float roots[8];
int nroots;
int niters;

float eval(float *c, int deg, float x) {
    float acc;
    int i;
    acc = c[deg];
    for (i = deg - 1; i >= 0; i--)
        acc = acc * x + c[i];
    return acc;
}

float eval_deriv(float *c, int deg, float x) {
    float acc;
    int i;
    acc = c[deg] * (float)deg;
    for (i = deg - 1; i >= 1; i--)
        acc = acc * x + c[i] * (float)i;
    return acc;
}

float newton(float *c, int deg, float guess) {
    int it;
    float fx;
    float dfx;
    int steps;

    steps = 0;
    for (it = 0; it < 40; it++) {
        fx = eval(c, deg, guess);
        dfx = eval_deriv(c, deg, guess);
        if (fx < 0.000001 && fx > -0.000001)
            break;
        if (dfx < 0.0000001 && dfx > -0.0000001)
            break;
        guess = guess - fx / dfx;
        steps = steps + 1;
    }
    niters = niters + steps;
    return guess;
}

/* Synthetic division of c by (x - r), in place. */
void deflate(float *c, int deg, float r) {
    float carry;
    float next;
    int i;
    carry = c[deg];
    for (i = deg - 1; i >= 0; i--) {
        next = c[i];
        c[i] = carry;
        carry = next + carry * r;
    }
}

int main() {
    int deg;
    float r;

    /* (x-1)(x-2)(x-3)(x-4) = x^4 - 10x^3 + 35x^2 - 50x + 24 */
    coeff[4] = 1.0;
    coeff[3] = -10.0;
    coeff[2] = 35.0;
    coeff[1] = -50.0;
    coeff[0] = 24.0;

    nroots = 0;
    deg = 4;
    while (deg > 0) {
        r = newton(coeff, deg, 0.5);
        roots[nroots] = r;
        nroots = nroots + 1;
        deflate(coeff, deg, r);
        deg = deg - 1;
    }

    print_int(nroots);
    print_char(' ');
    print_int((int)(roots[0] + roots[1] + roots[2] + roots[3] + 0.5));
    print_char(' ');
    print_int(niters);
    print_char('\n');
    return nroots * 10 + ((int)(roots[0] + 0.5)) % 10;
}
