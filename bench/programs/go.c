/*
 * go — board-scanning heuristics in the style of the SPEC "go" program.
 *
 * Shape: repeated full-board scans that READ global evaluation state on
 * every square but update it rarely (only when a better group is found).
 * Promotion keeps those hot read-mostly globals in registers across the
 * scan loops, cutting loads hard while stores barely change — the paper's
 * go row shows ~15% of loads removed and two orders less effect on stores.
 */

int board[361]; /* 19x19: 0 empty, 1 black, 2 white */
int libs[361];

int best_score;   /* read every square, written rarely */
int best_point;
int threshold;    /* read every square */
int black_caps;
int white_caps;
int scans;

int at(int r, int c) {
    return board[r * 19 + c];
}

void setup_board() {
    int r;
    int c;
    int v;
    for (r = 0; r < 19; r++) {
        for (c = 0; c < 19; c++) {
            v = (r * 7 + c * 11 + (r * c) % 5) % 9;
            if (v < 3)
                board[r * 19 + c] = 1;
            else if (v < 6)
                board[r * 19 + c] = 2;
            else
                board[r * 19 + c] = 0;
        }
    }
}

int count_liberties(int r, int c) {
    int n;
    n = 0;
    if (r > 0 && at(r - 1, c) == 0) n = n + 1;
    if (r < 18 && at(r + 1, c) == 0) n = n + 1;
    if (c > 0 && at(r, c - 1) == 0) n = n + 1;
    if (c < 18 && at(r, c + 1) == 0) n = n + 1;
    return n;
}

/*
 * The hot scan: for every point, compute a score and compare against the
 * global best/threshold. best_score and threshold are loaded every
 * iteration; stores happen only on improvement.
 */
void scan_board(int color) {
    int r;
    int c;
    int score;
    int l;
    int ncap;

    ncap = 0;
    for (r = 0; r < 19; r++) {
        for (c = 0; c < 19; c++) {
            if (at(r, c) != color)
                continue;
            l = count_liberties(r, c);
            libs[r * 19 + c] = l;
            score = l * 16 + (18 - r) + (18 - c) % 7;
            if (score > best_score && score > threshold) {
                best_score = score;
                best_point = r * 19 + c;
            }
            if (l == 0)
                ncap = ncap + 1;
        }
    }
    if (color == 1)
        black_caps = black_caps + ncap;
    else
        white_caps = white_caps + ncap;
    scans = scans + 1;
}

int main() {
    int pass;

    setup_board();
    threshold = 10;
    for (pass = 0; pass < 12; pass++) {
        best_score = 0;
        scan_board(1 + pass % 2);
        threshold = (threshold + best_score) / 2;
    }

    print_int(best_score);
    print_char(' ');
    print_int(best_point);
    print_char(' ');
    print_int(black_caps);
    print_char(' ');
    print_int(white_caps);
    print_char(' ');
    print_int(threshold);
    print_char('\n');
    return (best_score + threshold) % 193;
}
