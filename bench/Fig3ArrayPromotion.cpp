//===- bench/Fig3ArrayPromotion.cpp - Paper Figure 3 ----------------------===//
//
// The paper's Figure 3: for (i) for (j) B[i] += A[i][j]. Section 3.3's
// pointer-based promotion should keep B[i] in a register across the inner
// loop ("This eliminates a load before the reference to B[i] in the inner
// loop and a store after it"). This binary sweeps the matrix size and
// prints loads/stores with scalar promotion alone versus scalar plus
// pointer-based promotion.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "support/Format.h"

#include <cstdio>
#include <string>

using namespace rpcc;

namespace {

std::string figure3Source(int DimX, int DimY) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "float A[%d][%d]; float B[%d];\n"
                "int main() { int i; int j;\n"
                "  for (i = 0; i < %d; i++)\n"
                "    for (j = 0; j < %d; j++)\n"
                "      A[i][j] = (float)(i + j);\n"
                "  for (i = 0; i < %d; i++)\n"
                "    for (j = 0; j < %d; j++)\n"
                "      B[i] = B[i] + A[i][j];\n"
                "  return (int)B[%d]; }",
                DimX, DimY, DimX, DimX, DimY, DimX, DimY, DimX - 1);
  return Buf;
}

} // namespace

int main() {
  std::printf("Figure 3: Promoting Array References (paper section 3.3)\n");
  std::printf("kernel: for (i) for (j) B[i] += A[i][j]\n\n");

  TextTable T({"DIM_X x DIM_Y", "config", "total", "loads", "stores",
               "loads removed", "stores removed"});

  const int Dims[][2] = {{8, 16}, {16, 32}, {32, 32}, {32, 64}};
  for (const auto &D : Dims) {
    std::string Src = figure3Source(D[0], D[1]);
    ExecResult R[2];
    for (int PP = 0; PP != 2; ++PP) {
      CompilerConfig Cfg;
      Cfg.Analysis = AnalysisKind::PointsTo;
      Cfg.ScalarPromotion = true;
      Cfg.PointerPromotion = PP == 1;
      R[PP] = compileAndRun(Src, Cfg);
      if (!R[PP].Ok) {
        std::fprintf(stderr, "error: %s\n", R[PP].Error.c_str());
        return 1;
      }
    }
    if (R[0].ExitCode != R[1].ExitCode || R[0].Output != R[1].Output) {
      std::fprintf(stderr, "error: behavior diverged\n");
      return 1;
    }
    std::string Dim =
        std::to_string(D[0]) + " x " + std::to_string(D[1]);
    T.addRow({Dim, "scalar only", withCommas(R[0].Counters.Total),
              withCommas(R[0].Counters.Loads),
              withCommas(R[0].Counters.Stores), "-", "-"});
    T.addRow({"", "+ pointer promotion", withCommas(R[1].Counters.Total),
              withCommas(R[1].Counters.Loads),
              withCommas(R[1].Counters.Stores),
              withCommasSigned(static_cast<int64_t>(R[0].Counters.Loads) -
                               static_cast<int64_t>(R[1].Counters.Loads)),
              withCommasSigned(static_cast<int64_t>(R[0].Counters.Stores) -
                               static_cast<int64_t>(R[1].Counters.Stores))});
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\nExpected shape: pointer-based promotion removes one load "
              "and one store of B[i]\nper inner-loop iteration (DIM_X * "
              "DIM_Y of each), as in the paper's rewritten\ncode with the "
              "scalar temporary rb.\n");
  return 0;
}
