//===- bench/Tab1OpcodeHierarchy.cpp - Paper Table 1 ----------------------===//
//
// The paper's Table 1 defines the hierarchy of memory operations (iLoad,
// cLoad, sLoad/sStore, general Load/Store) that "denote increasingly more
// specific knowledge". This binary shows the hierarchy doing its job: the
// static mix of memory opcodes across the suite as analysis sharpens tag
// sets and opcode strengthening moves operations up the ladder.
//
//===----------------------------------------------------------------------===//

#include "alias/ModRef.h"
#include "alias/PointsTo.h"
#include "alias/TagRefine.h"
#include "driver/SuiteRunner.h"
#include "frontend/Lowering.h"
#include "support/Format.h"

#include <cstdio>

using namespace rpcc;

namespace {

OpcodeMix mixFor(int Stage) {
  OpcodeMix Sum;
  for (const std::string &Name : benchProgramNames()) {
    Module M;
    std::string Err;
    if (!compileToIL(loadBenchProgram(Name), M, Err))
      continue;
    if (Stage >= 1) {
      if (Stage >= 2) {
        PointsToResult PT = runPointsTo(M);
        runModRef(M, &PT);
      } else {
        runModRef(M);
      }
      strengthenOpcodes(M);
    }
    OpcodeMix Mix = countOpcodeMix(M);
    Sum.ILoad += Mix.ILoad;
    Sum.CLoad += Mix.CLoad;
    Sum.SLoad += Mix.SLoad;
    Sum.SStore += Mix.SStore;
    Sum.Load += Mix.Load;
    Sum.Store += Mix.Store;
  }
  return Sum;
}

} // namespace

int main() {
  std::printf("Table 1: Hierarchy of Memory Operations\n");
  std::printf("(static opcode census over the whole suite; strengthening "
              "moves general\nloads/stores up to scalar and constant forms "
              "as tag sets sharpen)\n\n");
  TextTable T({"stage", "iLoad", "cLoad", "sLoad", "sStore", "Load",
               "Store"});
  const char *Names[3] = {"front end only", "MOD/REF + strengthen",
                          "points-to + strengthen"};
  for (int Stage = 0; Stage != 3; ++Stage) {
    OpcodeMix M = mixFor(Stage);
    T.addRow({Names[Stage], withCommas(M.ILoad), withCommas(M.CLoad),
              withCommas(M.SLoad), withCommas(M.SStore), withCommas(M.Load),
              withCommas(M.Store)});
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\niLoad: immediate; cLoad: invariant-but-unknown value; "
              "sLoad/sStore: known\nscalar; Load/Store: general pointer-based "
              "form (see paper Table 1).\n");
  return 0;
}
