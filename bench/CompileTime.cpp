//===- bench/CompileTime.cpp - §3.1 cost-model benchmarks -----------------===//
//
// The paper bounds the promotion algorithm's cost by
// O(E alpha(E,B) + T(C + LB + LX)) and notes "In practice, it runs quite
// quickly." These google-benchmark timings exercise the claim: promotion
// time against the number of loops, the nesting depth, and the number of
// tags, plus whole-pipeline compile times for the real benchmark suite.
//
//===----------------------------------------------------------------------===//

#include "alias/ModRef.h"
#include "analysis/CfgNormalize.h"
#include "driver/CompileCache.h"
#include "driver/Compiler.h"
#include "driver/PassTiming.h"
#include "driver/SuiteRunner.h"
#include "frontend/Lowering.h"
#include "promote/ScalarPromotion.h"
#include "support/Format.h"
#include "support/Json.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace rpcc;

namespace {

/// N sequential loops, each touching G distinct globals.
std::string sequentialLoops(int NumLoops, int NumGlobals) {
  std::ostringstream S;
  for (int G = 0; G != NumGlobals; ++G)
    S << "int g" << G << ";\n";
  S << "int main() { int i;\n";
  for (int L = 0; L != NumLoops; ++L) {
    S << "  for (i = 0; i < 10; i++) {\n";
    for (int G = 0; G != NumGlobals; ++G)
      S << "    g" << G << " = g" << G << " + " << (L + G) << ";\n";
    S << "  }\n";
  }
  S << "  return g0;\n}\n";
  return S.str();
}

/// One loop nest of the given depth, touching G globals at the innermost
/// level (stresses the per-loop aggregation of equations 1-4).
std::string nestedLoops(int Depth, int NumGlobals) {
  std::ostringstream S;
  for (int G = 0; G != NumGlobals; ++G)
    S << "int g" << G << ";\n";
  S << "int main() {\n";
  for (int D = 0; D != Depth; ++D)
    S << "  int i" << D << ";\n";
  for (int D = 0; D != Depth; ++D)
    S << "  for (i" << D << " = 0; i" << D << " < 3; i" << D << "++) {\n";
  for (int G = 0; G != NumGlobals; ++G)
    S << "    g" << G << " = g" << G << " + 1;\n";
  for (int D = 0; D != Depth; ++D)
    S << "  }\n";
  S << "  return g0;\n}\n";
  return S.str();
}

/// Lowers + analyzes once per measurement, timing only the promoter.
void benchPromotion(benchmark::State &State, const std::string &Src) {
  for (auto _ : State) {
    State.PauseTiming();
    Module M;
    std::string Err;
    bool Ok = compileToIL(Src, M, Err);
    if (!Ok)
      State.SkipWithError("frontend failure");
    for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
      Function *F = M.function(static_cast<FuncId>(FI));
      if (!F->isBuiltin() && F->numBlocks())
        normalizeLoops(*F);
    }
    runModRef(M);
    State.ResumeTiming();
    PromotionStats S = promoteScalars(M);
    benchmark::DoNotOptimize(S.PromotedTags);
  }
}

void BM_PromoteSequentialLoops(benchmark::State &State) {
  std::string Src =
      sequentialLoops(static_cast<int>(State.range(0)), 8);
  benchPromotion(State, Src);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_PromoteSequentialLoops)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

void BM_PromoteNestDepth(benchmark::State &State) {
  std::string Src = nestedLoops(static_cast<int>(State.range(0)), 8);
  benchPromotion(State, Src);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_PromoteNestDepth)->DenseRange(2, 12, 2)->Complexity();

void BM_PromoteTagCount(benchmark::State &State) {
  std::string Src =
      sequentialLoops(8, static_cast<int>(State.range(0)));
  benchPromotion(State, Src);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_PromoteTagCount)->RangeMultiplier(2)->Range(4, 64)->Complexity();

/// Whole-pipeline compile time (frontend through register allocation) for
/// each real suite program.
void BM_CompileSuiteProgram(benchmark::State &State,
                            const std::string &Name) {
  std::string Src = loadBenchProgram(Name);
  for (auto _ : State) {
    CompilerConfig Cfg;
    Cfg.Analysis = AnalysisKind::PointsTo;
    CompileOutput Out = compileProgram(Src, Cfg);
    if (!Out.Ok)
      State.SkipWithError("compile failure");
    benchmark::DoNotOptimize(Out.M.get());
  }
}
BENCHMARK_CAPTURE(BM_CompileSuiteProgram, mlink, std::string("mlink"));
BENCHMARK_CAPTURE(BM_CompileSuiteProgram, gzip_enc, std::string("gzip_enc"));
BENCHMARK_CAPTURE(BM_CompileSuiteProgram, water, std::string("water"));
BENCHMARK_CAPTURE(BM_CompileSuiteProgram, bison, std::string("bison"));

// ---------------------------------------------------------------------------
// --cache-bench: cached vs uncached whole-suite compile sweep
// ---------------------------------------------------------------------------
//
// Measures what the shared-prefix CompileCache buys `rpcc --suite`: for
// each program, one sweep compiles the four matrix configurations —
// {MOD/REF, points-to} x {without, with promotion} — from scratch, and one
// forks them from a fresh cache (frontend once, each analysis once). Each
// sweep takes the best of --reps wall-clock samples and the raw results go
// to BENCH_compile.json in the same shape as BENCH_interp.json:
//   {"reps":N,"results":[{"program":..,"mode":"uncached"|"cached",
//    "wall_ms":..}],"geomean_speedup":..}
// Run from a Release build, like interp_throughput.

std::vector<CompilerConfig> suiteMatrix() {
  std::vector<CompilerConfig> Out;
  for (int A = 0; A != 2; ++A)
    for (int P = 0; P != 2; ++P) {
      CompilerConfig Cfg;
      Cfg.Analysis = A == 0 ? AnalysisKind::ModRef : AnalysisKind::PointsTo;
      Cfg.ScalarPromotion = P == 1;
      Out.push_back(Cfg);
    }
  return Out;
}

/// One full matrix sweep over \p Src; a fresh cache per sweep when
/// \p Cached, so the measurement includes the prefix compiles a real
/// suite run pays once per program.
double sweepOnce(const std::string &Src,
                 const std::vector<CompilerConfig> &Matrix, bool Cached) {
  std::unique_ptr<CompileCache> Cache;
  if (Cached)
    Cache = std::make_unique<CompileCache>();
  double T0 = timingNowMs();
  for (const CompilerConfig &Cfg : Matrix) {
    CompileOutput Out = Cache ? Cache->compile("bench", Src, Cfg)
                              : compileProgram(Src, Cfg);
    if (!Out.Ok) {
      std::fprintf(stderr, "error: compile failure:\n%s", Out.Errors.c_str());
      std::exit(1);
    }
    benchmark::DoNotOptimize(Out.M.get());
  }
  return timingNowMs() - T0;
}

int runCacheBench(unsigned Reps, const std::string &JsonFile,
                  const std::vector<std::string> &Programs) {
  std::vector<CompilerConfig> Matrix = suiteMatrix();
  TextTable T({"program", "uncached ms", "cached ms", "speedup"});
  std::string Json =
      "{\"reps\":" + std::to_string(Reps) + ",\"results\":[";
  double LogSum = 0;
  for (size_t PI = 0; PI != Programs.size(); ++PI) {
    const std::string &Name = Programs[PI];
    std::string Src = loadBenchProgram(Name);
    double BestUncached = 1e300, BestCached = 1e300;
    // Warmup: page in the source and fill allocator pools.
    sweepOnce(Src, Matrix, /*Cached=*/false);
    for (unsigned R = 0; R != Reps; ++R) {
      BestUncached = std::min(BestUncached, sweepOnce(Src, Matrix, false));
      BestCached = std::min(BestCached, sweepOnce(Src, Matrix, true));
    }
    double Speedup = BestUncached / BestCached;
    LogSum += std::log(Speedup);
    T.addRow({Name, fixed(BestUncached, 3), fixed(BestCached, 3),
              fixed(Speedup, 2)});
    if (PI)
      Json += ",";
    Json += "{\"program\":\"" + jsonEscape(Name) +
            "\",\"mode\":\"uncached\",\"wall_ms\":" + fixed(BestUncached, 3) +
            "},{\"program\":\"" + jsonEscape(Name) +
            "\",\"mode\":\"cached\",\"wall_ms\":" + fixed(BestCached, 3) + "}";
  }
  double Geomean =
      Programs.empty()
          ? 0
          : std::exp(LogSum / static_cast<double>(Programs.size()));
  Json += "],\"geomean_speedup\":" + fixed(Geomean, 3) + "}\n";
  std::fputs(T.render().c_str(), stdout);
  std::printf("geomean speedup (cached vs uncached): %s\n",
              fixed(Geomean, 2).c_str());
  std::ofstream JOut(JsonFile, std::ios::binary);
  if (!JOut) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonFile.c_str());
    return 4;
  }
  JOut << Json;
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  bool CacheBench = false;
  unsigned Reps = 5;
  std::string JsonFile = "BENCH_compile.json";
  std::vector<std::string> Programs = benchProgramNames();
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (std::strcmp(A, "--cache-bench") == 0) {
      CacheBench = true;
    } else if (std::strncmp(A, "--reps=", 7) == 0) {
      int V = std::atoi(A + 7);
      if (V < 1) {
        std::fprintf(stderr, "error: bad --reps value '%s'\n", A + 7);
        return 2;
      }
      Reps = static_cast<unsigned>(V);
    } else if (std::strncmp(A, "--json=", 7) == 0) {
      JsonFile = A + 7;
    } else if (std::strncmp(A, "--programs=", 11) == 0) {
      Programs.clear();
      std::string List = A + 11;
      size_t Pos = 0;
      while (Pos < List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        Programs.push_back(List.substr(Pos, Comma - Pos));
        Pos = Comma + 1;
      }
    }
    // Anything else is a google-benchmark flag; left for Initialize below.
  }
  if (CacheBench)
    return runCacheBench(Reps, JsonFile, Programs);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
