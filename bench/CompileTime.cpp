//===- bench/CompileTime.cpp - §3.1 cost-model benchmarks -----------------===//
//
// The paper bounds the promotion algorithm's cost by
// O(E alpha(E,B) + T(C + LB + LX)) and notes "In practice, it runs quite
// quickly." These google-benchmark timings exercise the claim: promotion
// time against the number of loops, the nesting depth, and the number of
// tags, plus whole-pipeline compile times for the real benchmark suite.
//
//===----------------------------------------------------------------------===//

#include "alias/ModRef.h"
#include "analysis/CfgNormalize.h"
#include "driver/Compiler.h"
#include "driver/SuiteRunner.h"
#include "frontend/Lowering.h"
#include "promote/ScalarPromotion.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace rpcc;

namespace {

/// N sequential loops, each touching G distinct globals.
std::string sequentialLoops(int NumLoops, int NumGlobals) {
  std::ostringstream S;
  for (int G = 0; G != NumGlobals; ++G)
    S << "int g" << G << ";\n";
  S << "int main() { int i;\n";
  for (int L = 0; L != NumLoops; ++L) {
    S << "  for (i = 0; i < 10; i++) {\n";
    for (int G = 0; G != NumGlobals; ++G)
      S << "    g" << G << " = g" << G << " + " << (L + G) << ";\n";
    S << "  }\n";
  }
  S << "  return g0;\n}\n";
  return S.str();
}

/// One loop nest of the given depth, touching G globals at the innermost
/// level (stresses the per-loop aggregation of equations 1-4).
std::string nestedLoops(int Depth, int NumGlobals) {
  std::ostringstream S;
  for (int G = 0; G != NumGlobals; ++G)
    S << "int g" << G << ";\n";
  S << "int main() {\n";
  for (int D = 0; D != Depth; ++D)
    S << "  int i" << D << ";\n";
  for (int D = 0; D != Depth; ++D)
    S << "  for (i" << D << " = 0; i" << D << " < 3; i" << D << "++) {\n";
  for (int G = 0; G != NumGlobals; ++G)
    S << "    g" << G << " = g" << G << " + 1;\n";
  for (int D = 0; D != Depth; ++D)
    S << "  }\n";
  S << "  return g0;\n}\n";
  return S.str();
}

/// Lowers + analyzes once per measurement, timing only the promoter.
void benchPromotion(benchmark::State &State, const std::string &Src) {
  for (auto _ : State) {
    State.PauseTiming();
    Module M;
    std::string Err;
    bool Ok = compileToIL(Src, M, Err);
    if (!Ok)
      State.SkipWithError("frontend failure");
    for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
      Function *F = M.function(static_cast<FuncId>(FI));
      if (!F->isBuiltin() && F->numBlocks())
        normalizeLoops(*F);
    }
    runModRef(M);
    State.ResumeTiming();
    PromotionStats S = promoteScalars(M);
    benchmark::DoNotOptimize(S.PromotedTags);
  }
}

void BM_PromoteSequentialLoops(benchmark::State &State) {
  std::string Src =
      sequentialLoops(static_cast<int>(State.range(0)), 8);
  benchPromotion(State, Src);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_PromoteSequentialLoops)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

void BM_PromoteNestDepth(benchmark::State &State) {
  std::string Src = nestedLoops(static_cast<int>(State.range(0)), 8);
  benchPromotion(State, Src);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_PromoteNestDepth)->DenseRange(2, 12, 2)->Complexity();

void BM_PromoteTagCount(benchmark::State &State) {
  std::string Src =
      sequentialLoops(8, static_cast<int>(State.range(0)));
  benchPromotion(State, Src);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_PromoteTagCount)->RangeMultiplier(2)->Range(4, 64)->Complexity();

/// Whole-pipeline compile time (frontend through register allocation) for
/// each real suite program.
void BM_CompileSuiteProgram(benchmark::State &State,
                            const std::string &Name) {
  std::string Src = loadBenchProgram(Name);
  for (auto _ : State) {
    CompilerConfig Cfg;
    Cfg.Analysis = AnalysisKind::PointsTo;
    CompileOutput Out = compileProgram(Src, Cfg);
    if (!Out.Ok)
      State.SkipWithError("compile failure");
    benchmark::DoNotOptimize(Out.M.get());
  }
}
BENCHMARK_CAPTURE(BM_CompileSuiteProgram, mlink, std::string("mlink"));
BENCHMARK_CAPTURE(BM_CompileSuiteProgram, gzip_enc, std::string("gzip_enc"));
BENCHMARK_CAPTURE(BM_CompileSuiteProgram, water, std::string("water"));
BENCHMARK_CAPTURE(BM_CompileSuiteProgram, bison, std::string("bison"));

} // namespace

BENCHMARK_MAIN();
