//===- bench/ServedThroughput.cpp - rpserved sustained throughput ---------===//
//
// Measures the serving stack end to end over real loopback sockets: an
// in-process Server (the same class rpserved wraps) is hammered by N
// client threads, each holding one keep-alive connection and issuing M
// POST /compile requests back to back. Three scenarios isolate what the
// artifact cache and coalescing buy:
//
//   fork   --fork-per-request baseline: every request forks a child that
//          compiles from scratch — the process model rpserved replaces
//   cold   cache enabled but every request is a unique source (a nonce
//          comment defeats the key), so every request pays a full build
//          on a pool worker
//   warm   the steady state: the corpus is primed first, every request is
//          a cache hit sharing the immutable compiled prefix
//
// Each scenario runs at every --connections count (default 1,4,16). The
// headline number is warm req/s over fork req/s at the highest connection
// count; --min-speedup turns it into a perf gate for ctest.
//
//   served_throughput [--requests=N] [--connections=a,b,...] [--workers=N]
//                     [--json=FILE] [--min-speedup=X]
//
// The table goes to stdout; raw numbers are written as JSON (default
// BENCH_served.json):
//   {"requests_per_conn":N,"workers":W,"results":[{"scenario":..,
//    "connections":..,"requests":..,"wall_ms":..,"rps":..,"p50_us":..,
//    "p99_us":..}],"headline_connections":..,"warm_rps":..,"fork_rps":..,
//    "speedup_warm_vs_fork":..}
//
// Run from a Release build; sanitizers distort fork cost badly.
//
//===----------------------------------------------------------------------===//

#include "driver/PassTiming.h"
#include "driver/SuiteRunner.h"
#include "served/HttpClient.h"
#include "served/Server.h"
#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace rpcc;

namespace {

struct Scenario {
  std::string Name;
  unsigned Connections = 0;
  size_t Requests = 0;
  double WallMs = 0;
  double Rps = 0;
  double P50Us = 0;
  double P99Us = 0;
};

/// The /compile body for corpus program \p K. Alternating analysis kinds
/// double the distinct artifact count; \p Nonce (cold scenario) makes the
/// source unique so every request misses the cache.
std::string compileBody(const std::vector<std::string> &Corpus, size_t K,
                        uint64_t Nonce) {
  std::string Src = Corpus[K % Corpus.size()];
  if (Nonce)
    Src += "\n// nonce " + std::to_string(Nonce) + "\n";
  std::string Body = "{\"source\":\"" + jsonEscape(Src) + "\"";
  Body += ",\"analysis\":\"";
  Body += (K & 1) ? "points-to" : "modref";
  Body += "\"}";
  return Body;
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size() - 1));
  return Sorted[Idx];
}

/// Runs one scenario: \p Conns client threads x \p Reqs requests against a
/// freshly started server. Exits the process on any failed request — a
/// benchmark over errors measures nothing.
Scenario runScenario(const std::string &Name, bool ForkPerRequest,
                     bool UniqueSources, bool Prime, unsigned Conns,
                     size_t Reqs, unsigned Workers,
                     const std::vector<std::string> &Corpus) {
  ServerOptions SO;
  SO.Workers = Workers;
  SO.ForkPerRequest = ForkPerRequest;
  SO.MaxConnections = Conns + 8;
  Server Srv(SO);
  Status St = Srv.start();
  if (!St) {
    std::fprintf(stderr, "error: server start failed: %s\n",
                 St.message().c_str());
    std::exit(1);
  }
  std::thread Loop([&] { Srv.run(); });

  auto postOne = [&](HttpClient &C, size_t K, uint64_t Nonce) {
    HttpClientResponse R;
    Status S = C.request("POST", "/compile", compileBody(Corpus, K, Nonce), R);
    if (!S || R.Status != 200 ||
        R.Body.find("\"status\":\"ok\"") == std::string::npos) {
      std::fprintf(stderr, "error: %s: request failed: %s (HTTP %d) %s\n",
                   Name.c_str(), S ? "bad response" : S.message().c_str(),
                   R.Status, R.Body.substr(0, 200).c_str());
      std::exit(1);
    }
  };

  if (Prime) {
    // Touch every (program, analysis) pair once so the timed phase is all
    // hits. 2x the corpus covers both analysis parities.
    HttpClient C;
    if (!C.connect("127.0.0.1", Srv.boundPort())) {
      std::fprintf(stderr, "error: prime connect failed\n");
      std::exit(1);
    }
    for (size_t K = 0; K != Corpus.size() * 2; ++K)
      postOne(C, K, 0);
  }

  std::atomic<uint64_t> NonceGen{1};
  std::vector<std::vector<double>> LatsPerConn(Conns);
  std::vector<std::thread> Threads;
  Threads.reserve(Conns);

  double T0 = timingNowMs();
  for (unsigned T = 0; T != Conns; ++T) {
    Threads.emplace_back([&, T] {
      HttpClient C;
      if (!C.connect("127.0.0.1", Srv.boundPort())) {
        std::fprintf(stderr, "error: connect failed\n");
        std::exit(1);
      }
      std::vector<double> &Lats = LatsPerConn[T];
      Lats.reserve(Reqs);
      for (size_t R = 0; R != Reqs; ++R) {
        uint64_t Nonce = UniqueSources
                             ? NonceGen.fetch_add(1, std::memory_order_relaxed)
                             : 0;
        double S0 = timingNowMs();
        postOne(C, T * 7919 + R, Nonce);
        Lats.push_back((timingNowMs() - S0) * 1000.0); // us
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double WallMs = timingNowMs() - T0;

  Srv.requestShutdown();
  Loop.join();

  std::vector<double> All;
  for (const std::vector<double> &L : LatsPerConn)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());

  Scenario Sc;
  Sc.Name = Name;
  Sc.Connections = Conns;
  Sc.Requests = All.size();
  Sc.WallMs = WallMs;
  Sc.Rps = WallMs > 0 ? static_cast<double>(All.size()) / (WallMs / 1000.0) : 0;
  Sc.P50Us = percentile(All, 0.50);
  Sc.P99Us = percentile(All, 0.99);
  return Sc;
}

} // namespace

int main(int argc, char **argv) {
  size_t Reqs = 40;
  unsigned Workers = 8;
  double MinSpeedup = 0;
  std::string JsonFile = "BENCH_served.json";
  std::vector<unsigned> ConnCounts = {1, 4, 16};

  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (std::strncmp(A, "--requests=", 11) == 0) {
      int V = std::atoi(A + 11);
      if (V < 1) {
        std::fprintf(stderr, "error: bad --requests value '%s'\n", A + 11);
        return 2;
      }
      Reqs = static_cast<size_t>(V);
    } else if (std::strncmp(A, "--workers=", 10) == 0) {
      int V = std::atoi(A + 10);
      if (V < 1) {
        std::fprintf(stderr, "error: bad --workers value '%s'\n", A + 10);
        return 2;
      }
      Workers = static_cast<unsigned>(V);
    } else if (std::strncmp(A, "--json=", 7) == 0) {
      JsonFile = A + 7;
    } else if (std::strncmp(A, "--min-speedup=", 14) == 0) {
      MinSpeedup = std::atof(A + 14);
      if (MinSpeedup <= 0) {
        std::fprintf(stderr, "error: bad --min-speedup value '%s'\n", A + 14);
        return 2;
      }
    } else if (std::strncmp(A, "--connections=", 14) == 0) {
      ConnCounts.clear();
      std::string List = A + 14;
      size_t Pos = 0;
      while (Pos < List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        int V = std::atoi(List.substr(Pos, Comma - Pos).c_str());
        if (V < 1) {
          std::fprintf(stderr, "error: bad --connections value\n");
          return 2;
        }
        ConnCounts.push_back(static_cast<unsigned>(V));
        Pos = Comma + 1;
      }
      if (ConnCounts.empty()) {
        std::fprintf(stderr, "error: bad --connections value\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: served_throughput [--requests=N] "
                   "[--connections=a,b,...] [--workers=N] [--json=FILE] "
                   "[--min-speedup=X]\n");
      return 2;
    }
  }

  std::vector<std::string> Corpus;
  for (const std::string &Name : benchProgramNames())
    Corpus.push_back(loadBenchProgram(Name));
  if (Corpus.empty()) {
    std::fprintf(stderr, "error: empty bench corpus\n");
    return 1;
  }

  std::vector<Scenario> Results;
  TextTable T({"scenario", "conns", "requests", "wall ms", "req/s", "p50 us",
               "p99 us"});
  for (unsigned Conns : ConnCounts) {
    // fork first: its numbers are the baseline the table reads against.
    Results.push_back(runScenario("fork", /*ForkPerRequest=*/true,
                                  /*UniqueSources=*/false, /*Prime=*/false,
                                  Conns, Reqs, Workers, Corpus));
    Results.push_back(runScenario("cold", /*ForkPerRequest=*/false,
                                  /*UniqueSources=*/true, /*Prime=*/false,
                                  Conns, Reqs, Workers, Corpus));
    Results.push_back(runScenario("warm", /*ForkPerRequest=*/false,
                                  /*UniqueSources=*/false, /*Prime=*/true,
                                  Conns, Reqs, Workers, Corpus));
  }
  for (const Scenario &S : Results)
    T.addRow({S.Name, std::to_string(S.Connections),
              std::to_string(S.Requests), fixed(S.WallMs, 1), fixed(S.Rps, 1),
              fixed(S.P50Us, 1), fixed(S.P99Us, 1)});
  std::fputs(T.render().c_str(), stdout);

  unsigned Headline = *std::max_element(ConnCounts.begin(), ConnCounts.end());
  double WarmRps = 0, ForkRps = 0;
  for (const Scenario &S : Results) {
    if (S.Connections != Headline)
      continue;
    if (S.Name == "warm")
      WarmRps = S.Rps;
    else if (S.Name == "fork")
      ForkRps = S.Rps;
  }
  double Speedup = ForkRps > 0 ? WarmRps / ForkRps : 0;
  std::printf("warm vs fork at %u connections: %s req/s vs %s req/s "
              "(%sx)\n",
              Headline, fixed(WarmRps, 1).c_str(), fixed(ForkRps, 1).c_str(),
              fixed(Speedup, 2).c_str());

  std::string Json;
  Json += "{\"requests_per_conn\":" + std::to_string(Reqs);
  Json += ",\"workers\":" + std::to_string(Workers);
  Json += ",\"results\":[";
  for (size_t I = 0; I != Results.size(); ++I) {
    const Scenario &S = Results[I];
    if (I)
      Json += ",";
    Json += "{\"scenario\":\"" + jsonEscape(S.Name) + "\"";
    Json += ",\"connections\":" + std::to_string(S.Connections);
    Json += ",\"requests\":" + std::to_string(S.Requests);
    Json += ",\"wall_ms\":" + fixed(S.WallMs, 3);
    Json += ",\"rps\":" + fixed(S.Rps, 3);
    Json += ",\"p50_us\":" + fixed(S.P50Us, 3);
    Json += ",\"p99_us\":" + fixed(S.P99Us, 3) + "}";
  }
  Json += "],\"headline_connections\":" + std::to_string(Headline);
  Json += ",\"warm_rps\":" + fixed(WarmRps, 3);
  Json += ",\"fork_rps\":" + fixed(ForkRps, 3);
  Json += ",\"speedup_warm_vs_fork\":" + fixed(Speedup, 3);
  Json += "}\n";
  std::ofstream JOut(JsonFile, std::ios::binary);
  if (!JOut) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonFile.c_str());
    return 4;
  }
  JOut << Json;

  if (MinSpeedup > 0 && Speedup < MinSpeedup) {
    std::fprintf(stderr,
                 "error: warm-vs-fork speedup %.3f below required "
                 "minimum %.3f\n",
                 Speedup, MinSpeedup);
    return 5;
  }
  return 0;
}
