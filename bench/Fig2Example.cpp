//===- bench/Fig2Example.cpp - Paper Figure 2: the worked example ---------===//
//
// Rebuilds the paper's Figure 2 — the triply nested loop over tags A, B, C
// — and prints the information the figure tabulates: per-block B_EXPLICIT
// and B_AMBIGUOUS, the per-loop equation results, and the IL before and
// after promotion, showing the landing-pad loads and exit-block stores in
// the same places the paper puts them (load of C in B0, store of C in B9,
// load of A in B2, store of A in B8).
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "promote/ScalarPromotion.h"

#include <cstdio>

using namespace rpcc;

namespace {

struct Figure2 {
  Module M;
  Function *F = nullptr;
  TagId A, B, C;

  Figure2() {
    A = M.tags().createGlobal("A", 8, true, MemType::I64);
    B = M.tags().createGlobal("B", 8, true, MemType::I64);
    C = M.tags().createGlobal("C", 8, true, MemType::I64);
    for (TagId T : {A, B, C})
      M.tags().tag(T).AddressTaken = true;

    Function *Foo = M.addFunction("foo");
    {
      IRBuilder FB(M, Foo);
      FB.setBlock(Foo->newBlock("entry"));
      FB.emitRet();
    }
    Function *Bar = M.addFunction("bar");
    {
      IRBuilder FB(M, Bar);
      FB.setBlock(Bar->newBlock("entry"));
      FB.emitRet();
    }

    F = M.addFunction("fig2");
    IRBuilder Bld(M, F);
    BasicBlock *B0 = F->newBlock("B0-outer-pad");
    BasicBlock *B1 = F->newBlock("B1-outer-header");
    BasicBlock *B2 = F->newBlock("B2-middle-pad");
    BasicBlock *B3 = F->newBlock("B3-middle-header");
    BasicBlock *B4 = F->newBlock("B4-inner-pad");
    BasicBlock *B5 = F->newBlock("B5-inner-header");
    BasicBlock *B6 = F->newBlock("B6-inner-latch");
    BasicBlock *B7 = F->newBlock("B7-inner-exit");
    BasicBlock *B8 = F->newBlock("B8-middle-exit");
    BasicBlock *B9 = F->newBlock("B9-outer-exit");

    Bld.setBlock(B0);
    Bld.emitJmp(B1->id());

    Bld.setBlock(B1); // SST [C] r0; JSR foo ref{A}
    Reg R0 = Bld.emitLoadI(42);
    Bld.emitScalarStore(C, R0);
    Bld.emitCall(Foo, {});
    B1->insts().back()->Refs.insert(A);
    Reg C1 = Bld.emitLoadI(1);
    Bld.emitBr(C1, B2->id(), B9->id());

    Bld.setBlock(B2);
    Bld.emitJmp(B3->id());

    Bld.setBlock(B3); // SST [B] r2 — explicit store of B
    Reg V = Bld.emitLoadI(7);
    Bld.emitScalarStore(B, V);
    Reg C2 = Bld.emitLoadI(1);
    Bld.emitBr(C2, B4->id(), B8->id());

    Bld.setBlock(B4); // JSR bar ref{B}
    Bld.emitCall(Bar, {});
    B4->insts().back()->Refs.insert(B);
    Bld.emitJmp(B5->id());

    Bld.setBlock(B5); // SLD [A]
    Bld.emitScalarLoad(A);
    Reg C3 = Bld.emitLoadI(1);
    Bld.emitBr(C3, B6->id(), B7->id());

    Bld.setBlock(B6);
    Bld.emitJmp(B5->id());

    Bld.setBlock(B7); // SST [A]
    Reg R4 = Bld.emitLoadI(9);
    Bld.emitScalarStore(A, R4);
    Bld.emitJmp(B3->id());

    Bld.setBlock(B8);
    Bld.emitJmp(B1->id());

    Bld.setBlock(B9);
    Bld.emitRet();

    recomputeCfg(*F);
  }
};

std::string tagSetNames(const Module &M, const TagSet &S) {
  std::string Out = "{";
  bool First = true;
  for (TagId T : S) {
    if (!First)
      Out += ",";
    First = false;
    Out += M.tags().tag(T).Name;
  }
  return Out + "}";
}

} // namespace

int main() {
  Figure2 Fig;

  std::printf("Figure 2: An Example (paper section 3.2)\n\n");
  std::printf("-- IL before promotion --\n%s\n",
              printFunction(Fig.M, *Fig.F).c_str());

  auto Infos = analyzeScalarPromotion(Fig.M, *Fig.F);
  std::printf("-- Loop information sets (Figure 1 equations) --\n");
  std::printf("%-10s %-8s %-12s %-12s %-12s %-8s\n", "header", "depth",
              "EXPLICIT", "AMBIGUOUS", "PROMOTABLE", "LIFT");
  for (const auto &I : Infos)
    std::printf("B%-9u %-8u %-12s %-12s %-12s %-8s\n", I.Header, I.Depth,
                tagSetNames(Fig.M, I.Explicit).c_str(),
                tagSetNames(Fig.M, I.Ambiguous).c_str(),
                tagSetNames(Fig.M, I.Promotable).c_str(),
                tagSetNames(Fig.M, I.Lift).c_str());

  PromotionStats S = promoteScalarsInFunction(Fig.M, *Fig.F);
  std::printf("\n-- Promotion --\n");
  std::printf("promoted tags: %u  rewritten ops: %u  pad loads: %u  "
              "exit stores: %u\n",
              S.PromotedTags, S.RewrittenOps, S.LoadsInserted,
              S.StoresInserted);
  std::printf("\n-- IL after promotion --\n%s\n",
              printFunction(Fig.M, *Fig.F).c_str());

  std::printf("Paper's expectation: A promoted in the two inner loops and "
              "lifted at the middle\nloop (load in B2, store in B8); C "
              "promoted in the outer loop (load in B0,\nstore in B9); B "
              "blocked by the ambiguous JSR reference.\n");
  return 0;
}
