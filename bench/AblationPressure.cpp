//===- bench/AblationPressure.cpp - Register pressure ablation ------------===//
//
// The paper's §5 water anecdote and §3.4 caution: "Register promotion
// increases the demand for registers... beyond some point, the memory
// accesses removed by the transformation were balanced by the spills added
// during register allocation." This binary sweeps the register-file size
// on `water` (28 promotable values in one nest) and shows the crossover,
// then evaluates the two throttles DESIGN.md §8 proposes: a per-loop
// promotion cap (Carr-style bin packing) and demotion stores only for
// modified tags.
//
//===----------------------------------------------------------------------===//

#include "driver/SuiteRunner.h"
#include "support/Format.h"

#include <cstdio>

using namespace rpcc;

namespace {

ExecResult runWater(const std::string &Src, unsigned K, bool Promote,
                    unsigned Throttle, bool StoreOnlyMod, bool Classic) {
  CompilerConfig Cfg;
  Cfg.ScalarPromotion = Promote;
  Cfg.NumRegisters = K;
  Cfg.ClassicAllocator = Classic;
  Cfg.Promo.MaxPromotedPerLoop = Throttle;
  Cfg.Promo.StoreOnlyIfModified = StoreOnlyMod;
  ExecResult R = compileAndRun(Src, Cfg);
  if (!R.Ok) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    std::exit(1);
  }
  return R;
}

void sweepK(const std::string &Src, bool Classic) {
  TextTable T({"K", "total w/o promo", "total with promo", "promo effect",
               "loads with", "stores with"});
  for (unsigned K : {8u, 12u, 16u, 20u, 24u, 32u, 48u}) {
    ExecResult Off = runWater(Src, K, false, 0, false, Classic);
    ExecResult On = runWater(Src, K, true, 0, false, Classic);
    double Pct = 100.0 *
                 (static_cast<double>(Off.Counters.Total) -
                  static_cast<double>(On.Counters.Total)) /
                 static_cast<double>(Off.Counters.Total);
    T.addRow({std::to_string(K), withCommas(Off.Counters.Total),
              withCommas(On.Counters.Total), fixed(Pct, 2) + "%",
              withCommas(On.Counters.Loads),
              withCommas(On.Counters.Stores)});
  }
  std::fputs(T.render().c_str(), stdout);
}

} // namespace

int main() {
  std::string Src = loadBenchProgram("water");

  std::printf("Register-pressure ablation on `water` "
              "(28 promotable values in one loop nest)\n\n");
  std::printf("-- K sweep, 1997-vintage allocator (Briggs-only coalescing, "
              "no rematerialization) --\n");
  sweepK(Src, /*Classic=*/true);
  std::printf("\nNegative effect = promotion loses to the spills it causes "
              "— the paper's water\nanecdote (\"these allocators are known "
              "to over-spill in tight situations\").\n");

  std::printf("\n-- K sweep, modern allocator (George coalescing + "
              "rematerialization) --\n");
  sweepK(Src, /*Classic=*/false);
  std::printf("\nThe allocator refinements from Briggs' thesis rescue "
              "promotion at every K.\n");

  std::printf("\n-- Throttled promotion at K=16 (Carr-style cap, DESIGN.md "
              "§8) --\n");
  TextTable T2({"MaxPromotedPerLoop", "total", "loads", "stores"});
  ExecResult Base = runWater(Src, 16, false, 0, false, true);
  T2.addRow({"no promotion", withCommas(Base.Counters.Total),
             withCommas(Base.Counters.Loads),
             withCommas(Base.Counters.Stores)});
  for (unsigned Cap : {4u, 8u, 12u, 16u, 20u, 28u}) {
    ExecResult R = runWater(Src, 16, true, Cap, false, true);
    T2.addRow({std::to_string(Cap), withCommas(R.Counters.Total),
               withCommas(R.Counters.Loads), withCommas(R.Counters.Stores)});
  }
  std::fputs(T2.render().c_str(), stdout);

  std::printf("\n-- Store-only-if-modified demotion at K=16 (DESIGN.md §8) "
              "--\n");
  TextTable T3({"variant", "total", "loads", "stores"});
  ExecResult Paper = runWater(Src, 16, true, 0, false, true);
  ExecResult Lazy = runWater(Src, 16, true, 0, true, true);
  T3.addRow({"paper (always store)", withCommas(Paper.Counters.Total),
             withCommas(Paper.Counters.Loads),
             withCommas(Paper.Counters.Stores)});
  T3.addRow({"store only if modified", withCommas(Lazy.Counters.Total),
             withCommas(Lazy.Counters.Loads),
             withCommas(Lazy.Counters.Stores)});
  std::fputs(T3.render().c_str(), stdout);
  return 0;
}
