//===- bench/SuiteTable.h - Shared driver for Figures 5-7 ------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef RPCC_BENCH_SUITETABLE_H
#define RPCC_BENCH_SUITETABLE_H

#include "driver/SuiteRunner.h"

#include <cstdio>
#include <cstdlib>

namespace rpcc {

/// Shared argv handling for the figure binaries: an optional first argument
/// names the worker-thread count (default 1, i.e. the historical serial
/// behavior).
inline unsigned suiteTableJobs(int argc, char **argv) {
  if (argc < 2)
    return 1;
  int V = std::atoi(argv[1]);
  return V >= 1 ? static_cast<unsigned>(V) : 1;
}

/// Runs the 14-program suite through the paper's four configurations and
/// prints the requested metric as a Figure 5/6/7-style table. \p Jobs > 1
/// fans the 56 cells across worker threads; the table is byte-identical
/// either way.
inline int runSuiteTable(Metric Which, const char *Title, unsigned Jobs = 1) {
  std::printf("%s\n", Title);
  std::printf("(14 MiniC programs standing in for the paper's Figure 4 "
              "suite; 16+16 allocatable registers)\n\n");
  SuiteOptions Opts;
  Opts.Jobs = Jobs;
  std::vector<ProgramResults> All = runSuite(benchProgramNames(), Opts);
  for (const ProgramResults &PR : All)
    for (int A = 0; A != 2; ++A)
      for (int P = 0; P != 2; ++P)
        if (!PR.R[A][P].Ok) {
          // Divergence and missing-baseline cells arrive pre-flagged.
          std::fprintf(stderr, "error: %s failed: %s\n", PR.Name.c_str(),
                       PR.R[A][P].Error.c_str());
          return 1;
        }
  std::string Table = formatPaperTable(All, Which);
  std::fputs(Table.c_str(), stdout);
  return 0;
}

} // namespace rpcc

#endif // RPCC_BENCH_SUITETABLE_H
