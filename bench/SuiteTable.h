//===- bench/SuiteTable.h - Shared driver for Figures 5-7 ------*- C++ -*-===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef RPCC_BENCH_SUITETABLE_H
#define RPCC_BENCH_SUITETABLE_H

#include "driver/SuiteRunner.h"

#include <cstdio>

namespace rpcc {

/// Runs the 14-program suite through the paper's four configurations and
/// prints the requested metric as a Figure 5/6/7-style table.
inline int runSuiteTable(Metric Which, const char *Title) {
  std::printf("%s\n", Title);
  std::printf("(14 MiniC programs standing in for the paper's Figure 4 "
              "suite; 16+16 allocatable registers)\n\n");
  std::vector<ProgramResults> All;
  for (const std::string &Name : benchProgramNames()) {
    ProgramResults PR = runAllConfigs(Name, loadBenchProgram(Name));
    for (int A = 0; A != 2; ++A)
      for (int P = 0; P != 2; ++P)
        if (!PR.R[A][P].Ok) {
          std::fprintf(stderr, "error: %s failed: %s\n", Name.c_str(),
                       PR.R[A][P].Error.c_str());
          return 1;
        }
    // Observable behavior must agree across all four configurations.
    for (int A = 0; A != 2; ++A)
      for (int P = 0; P != 2; ++P)
        if (PR.R[A][P].Output != PR.R[0][0].Output) {
          std::fprintf(stderr, "error: %s outputs differ across configs\n",
                       Name.c_str());
          return 1;
        }
    All.push_back(std::move(PR));
  }
  std::string Table = formatPaperTable(All, Which);
  std::fputs(Table.c_str(), stdout);
  return 0;
}

} // namespace rpcc

#endif // RPCC_BENCH_SUITETABLE_H
