//===- bench/InterpThroughput.cpp - Interpreter engine speedup ------------===//
//
// Measures dynamic steps/second of the counting interpreter over the suite
// programs — switch engine, pre-decoded fast path, and (where available)
// the native jit — and reports the per-program and geomean speedups. Each
// (program, engine) pair takes the best of --reps wall-clock samples on the
// same compiled module, so compile time and first-touch page faults stay
// out of the measurement.
//
//   interp_throughput [--reps=N] [--json=FILE] [--programs=a,b,...]
//                     [--min-jit-geomean=X]
//
// The table goes to stdout; the raw samples are also written as JSON
// (default BENCH_interp.json):
//   {"reps":N,"results":[{"program":..,"engine":..,"steps":..,
//    "wall_ms":..,"compile_ms":..}],
//    "geomean_speedup":..,"geomean_speedup_jit":..}
// (the jit fields appear only when the build has a jit; compile_ms is the
// warmup run's lazy-compilation time and is 0 for non-jit engines).
// --min-jit-geomean=X exits nonzero when the jit geomean lands below X,
// which is how the bench_smoke ctest turns this harness into a perf gate.
//
// Run from a Release build — the fast path's advantage is mostly inlining
// and dispatch, which RelWithDebInfo already shows but sanitizers distort.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/SuiteRunner.h"
#include "support/Format.h"
#include "support/Json.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace rpcc;

namespace {

struct Sample {
  std::string Program;
  InterpEngine Engine;
  uint64_t Steps = 0;
  double BestMs = 0;
  /// Lazy-compilation wall time of the warmup run — the only run that can
  /// pay it when the code cache is on. Kept out of BestMs (the warmup never
  /// enters the best-of pool) and reported separately so the JSON shows
  /// compile cost next to, not inside, steady-state throughput.
  double CompileMs = 0;
};

/// Best-of-N wall time for one engine over an already-compiled module.
/// The minimum over repeated runs is the standard estimator on a shared
/// machine — every perturbation (preemption, interrupt) only adds time.
/// Short programs finish in microseconds, so --reps is scaled up until the
/// repeated runs cover at least MinTotalMs per engine and the minimum has a
/// real chance of being an unperturbed run. Dies if any run faults or the
/// engines ever disagree on step counts — a benchmark over diverging
/// engines would be measuring a bug.
constexpr double MinTotalMs = 60.0;

Sample measure(const std::string &Name, Module &M, InterpEngine E,
               unsigned Reps) {
  InterpOptions IO;
  IO.Engine = E;

  Sample S;
  S.Program = Name;
  S.Engine = E;
  S.BestMs = 1e300;

  auto runOnce = [&](bool Warmup) -> double {
    double T0 = timingNowMs();
    ExecResult Res = interpret(M, IO);
    double Ms = timingNowMs() - T0;
    if (Warmup)
      S.CompileMs = Res.JitCompileMs;
    if (!Res.Ok) {
      std::fprintf(stderr, "error: %s [%s]: %s\n", Name.c_str(),
                   interpEngineName(E), Res.Error.c_str());
      std::exit(1);
    }
    if (S.Steps == 0)
      S.Steps = Res.Counters.Total;
    else if (S.Steps != Res.Counters.Total) {
      std::fprintf(stderr, "error: %s [%s]: step count varies across runs\n",
                   Name.c_str(), interpEngineName(E));
      std::exit(1);
    }
    return Ms;
  };

  // Warmup run: pages in the simulated memory images and calibrates how
  // many repetitions MinTotalMs buys.
  double WarmMs = runOnce(/*Warmup=*/true);
  double PerRun = WarmMs > 1e-6 ? WarmMs : 1e-6;
  unsigned N = Reps;
  if (PerRun * Reps < MinTotalMs)
    N = static_cast<unsigned>(MinTotalMs / PerRun) + 1;

  for (unsigned R = 0; R != N; ++R) {
    double Ms = runOnce(/*Warmup=*/false);
    if (Ms < S.BestMs)
      S.BestMs = Ms;
  }
  return S;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Reps = 3;
  double MinJitGeomean = 0;
  std::string JsonFile = "BENCH_interp.json";
  std::vector<std::string> Programs = benchProgramNames();

  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (std::strncmp(A, "--reps=", 7) == 0) {
      int V = std::atoi(A + 7);
      if (V < 1) {
        std::fprintf(stderr, "error: bad --reps value '%s'\n", A + 7);
        return 2;
      }
      Reps = static_cast<unsigned>(V);
    } else if (std::strncmp(A, "--json=", 7) == 0) {
      JsonFile = A + 7;
    } else if (std::strncmp(A, "--min-jit-geomean=", 18) == 0) {
      MinJitGeomean = std::atof(A + 18);
      if (MinJitGeomean <= 0) {
        std::fprintf(stderr, "error: bad --min-jit-geomean value '%s'\n",
                     A + 18);
        return 2;
      }
    } else if (std::strncmp(A, "--programs=", 11) == 0) {
      Programs.clear();
      std::string List = A + 11;
      size_t Pos = 0;
      while (Pos < List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        Programs.push_back(List.substr(Pos, Comma - Pos));
        Pos = Comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: interp_throughput [--reps=N] [--json=FILE] "
                   "[--programs=a,b,...] [--min-jit-geomean=X]\n");
      return 2;
    }
  }

  const bool Jit = jitSupported();
  std::vector<Sample> Results;
  double LogSum = 0, LogSumJit = 0;
  size_t NPrograms = 0;
  std::vector<std::string> Cols = {"program", "steps", "switch ms",
                                   "fastpath ms"};
  if (Jit)
    Cols.push_back("jit ms");
  Cols.insert(Cols.end(), {"switch Msteps/s", "fastpath Msteps/s"});
  if (Jit)
    Cols.insert(Cols.end(), {"jit Msteps/s", "speedup", "jit speedup"});
  else
    Cols.push_back("speedup");
  TextTable T(Cols);
  for (const std::string &Name : Programs) {
    CompilerConfig Cfg;
    Cfg.Analysis = AnalysisKind::PointsTo;
    CompileOutput Out = compileProgram(loadBenchProgram(Name), Cfg);
    if (!Out.Ok) {
      std::fprintf(stderr, "error: %s failed to compile:\n%s", Name.c_str(),
                   Out.Errors.c_str());
      return 1;
    }
    Sample Sw = measure(Name, *Out.M, InterpEngine::Switch, Reps);
    Sample Fp = measure(Name, *Out.M, InterpEngine::FastPath, Reps);
    Sample Jt;
    if (Jit)
      Jt = measure(Name, *Out.M, InterpEngine::Jit, Reps);
    if (Sw.Steps != Fp.Steps || (Jit && Sw.Steps != Jt.Steps)) {
      std::fprintf(stderr, "error: %s: engines disagree on step count\n",
                   Name.c_str());
      return 1;
    }
    double Speedup = Sw.BestMs / Fp.BestMs;
    LogSum += std::log(Speedup);
    // The jit's headline ratio is against the fast path — the engine it has
    // to beat — not the reference loop.
    double JitSpeedup = Jit ? Fp.BestMs / Jt.BestMs : 0;
    if (Jit) {
      LogSumJit += std::log(JitSpeedup);
      // The jit must never lose to the engine it exists to beat; a loss on
      // any single program is a regression worth flagging even when the
      // geomean looks healthy.
      if (Jt.BestMs > Fp.BestMs)
        std::fprintf(stderr,
                     "warning: %s: jit (%.3f ms) slower than fastpath "
                     "(%.3f ms)\n",
                     Name.c_str(), Jt.BestMs, Fp.BestMs);
    }
    ++NPrograms;
    auto MStepsPerSec = [&](const Sample &S) {
      return static_cast<double>(S.Steps) / S.BestMs / 1e3;
    };
    std::vector<std::string> Row = {Name, withCommas(Sw.Steps),
                                    fixed(Sw.BestMs, 3), fixed(Fp.BestMs, 3)};
    if (Jit)
      Row.push_back(fixed(Jt.BestMs, 3));
    Row.insert(Row.end(),
               {fixed(MStepsPerSec(Sw), 2), fixed(MStepsPerSec(Fp), 2)});
    if (Jit)
      Row.insert(Row.end(), {fixed(MStepsPerSec(Jt), 2), fixed(Speedup, 2),
                             fixed(JitSpeedup, 2)});
    else
      Row.push_back(fixed(Speedup, 2));
    T.addRow(Row);
    Results.push_back(Sw);
    Results.push_back(Fp);
    if (Jit)
      Results.push_back(Jt);
  }

  double Geomean = NPrograms
                       ? std::exp(LogSum / static_cast<double>(NPrograms))
                       : 0;
  double GeomeanJit =
      Jit && NPrograms ? std::exp(LogSumJit / static_cast<double>(NPrograms))
                       : 0;
  std::fputs(T.render().c_str(), stdout);
  std::printf("geomean speedup (fastpath vs switch): %s\n",
              fixed(Geomean, 2).c_str());
  if (Jit)
    std::printf("geomean speedup (jit vs fastpath): %s\n",
                fixed(GeomeanJit, 2).c_str());

  std::string Json;
  Json += "{\"reps\":" + std::to_string(Reps) + ",\"results\":[";
  for (size_t I = 0; I != Results.size(); ++I) {
    const Sample &S = Results[I];
    if (I)
      Json += ",";
    Json += "{\"program\":\"" + jsonEscape(S.Program) + "\"";
    Json += ",\"engine\":\"" + std::string(interpEngineName(S.Engine)) + "\"";
    Json += ",\"steps\":" + std::to_string(S.Steps);
    Json += ",\"wall_ms\":" + fixed(S.BestMs, 3);
    Json += ",\"compile_ms\":" + fixed(S.CompileMs, 3) + "}";
  }
  Json += "],\"geomean_speedup\":" + fixed(Geomean, 3);
  if (Jit)
    Json += ",\"geomean_speedup_jit\":" + fixed(GeomeanJit, 3);
  Json += "}\n";
  std::ofstream JOut(JsonFile, std::ios::binary);
  if (!JOut) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonFile.c_str());
    return 4;
  }
  JOut << Json;

  if (Jit && MinJitGeomean > 0 && GeomeanJit < MinJitGeomean) {
    std::fprintf(stderr,
                 "error: jit geomean %.3f below required minimum %.3f\n",
                 GeomeanJit, MinJitGeomean);
    return 5;
  }
  return 0;
}
