//===- bench/SuiteThroughput.cpp - Parallel suite speedup -----------------===//
//
// Measures wall-clock for the full 14-program x 4-configuration matrix,
// serial vs parallel, and verifies the two runs render byte-identical
// Figure 5/6/7 tables. On a multi-core machine --jobs=N approaches Nx until
// the longest single cell (go, bison) dominates; on one core the speedup is
// ~1x but the identity check still holds.
//
//   suite_throughput [jobs]     # default: hardware concurrency
//
//===----------------------------------------------------------------------===//

#include "driver/SuiteRunner.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace rpcc;

namespace {

std::string renderAllTables(const std::vector<ProgramResults> &All) {
  std::string Out;
  for (Metric M : {Metric::TotalOps, Metric::Stores, Metric::Loads})
    Out += formatPaperTable(All, M);
  return Out;
}

double runOnce(unsigned Jobs, std::string &Tables) {
  SuiteOptions Opts;
  Opts.Jobs = Jobs;
  double T0 = timingNowMs();
  std::vector<ProgramResults> All = runSuite(benchProgramNames(), Opts);
  double Elapsed = timingNowMs() - T0;
  for (const ProgramResults &PR : All)
    for (int A = 0; A != 2; ++A)
      for (int P = 0; P != 2; ++P)
        if (!PR.R[A][P].Ok) {
          std::fprintf(stderr, "error: %s: %s\n", PR.Name.c_str(),
                       PR.R[A][P].Error.c_str());
          std::exit(1);
        }
  Tables = renderAllTables(All);
  return Elapsed;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = ThreadPool::defaultConcurrency();
  if (argc > 1) {
    int V = std::atoi(argv[1]);
    if (V < 1) {
      std::fprintf(stderr, "usage: suite_throughput [jobs>=1]\n");
      return 2;
    }
    Jobs = static_cast<unsigned>(V);
  }

  // Warm-up pass so file loading and allocator warmth don't bias the
  // serial leg.
  std::string Warm;
  runOnce(1, Warm);

  std::string SerialTables, ParallelTables;
  double SerialMs = runOnce(1, SerialTables);
  double ParallelMs = runOnce(Jobs, ParallelTables);

  if (SerialTables != ParallelTables) {
    std::fprintf(stderr,
                 "FAIL: parallel tables differ from serial tables\n");
    return 1;
  }

  std::printf("suite throughput (14 programs x 4 configs = 56 cells)\n");
  std::printf("  serial        %8.1f ms\n", SerialMs);
  std::printf("  --jobs=%-6u %8.1f ms\n", Jobs, ParallelMs);
  std::printf("  speedup       %8.2fx (hardware threads: %u)\n",
              ParallelMs > 0 ? SerialMs / ParallelMs : 0.0,
              ThreadPool::defaultConcurrency());
  std::printf("  tables        byte-identical\n");
  return 0;
}
