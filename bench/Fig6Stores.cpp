//===- bench/Fig6Stores.cpp - Paper Figure 6: stores executed -------------===//

#include "SuiteTable.h"

int main() {
  return rpcc::runSuiteTable(rpcc::Metric::Stores, "Figure 6: Stores");
}
