//===- bench/Fig6Stores.cpp - Paper Figure 6: stores executed -------------===//

#include "SuiteTable.h"

int main(int argc, char **argv) {
  return rpcc::runSuiteTable(rpcc::Metric::Stores, "Figure 6: Stores",
                             rpcc::suiteTableJobs(argc, argv));
}
