//===- bench/ExplainResidual.cpp - Sec 5 diagnostic: explain the residue --===//
//
// Part of rpcc, a reproduction of "Register Promotion in C Programs"
// (Cooper & Lu, PLDI 1997). MIT license; see LICENSE.
//
// The paper's §5 walks through *why* promotion left operations behind
// (calls inside loops, ambiguous pointers). This binary reproduces that
// discussion mechanically for every suite program: it runs the MOD/REF
// with-promotion cell under the dynamic tag profiler, joins the residual
// in-loop traffic of promotable-class tags against the remark stream, and
// prints the ranked "promotion left on the table" report next to the
// Figure 6/7 deltas it explains.
//
//   explain_residual [program...]     # default: the whole Figure 4 suite
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/SuiteRunner.h"
#include "obs/Remark.h"
#include "obs/TagProfile.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace rpcc;

namespace {

int explainOne(const std::string &Name) {
  std::string Src = loadBenchProgram(Name);

  // The promotion-off baseline gives the Figure 6/7 "without" column.
  CompilerConfig Off;
  Off.Analysis = AnalysisKind::ModRef;
  Off.ScalarPromotion = false;
  ExecResult Without = compileAndRun(Src, Off);
  if (!Without.Ok) {
    std::fprintf(stderr, "error: %s baseline failed: %s\n", Name.c_str(),
                 Without.Error.c_str());
    return 1;
  }

  // The promoted cell runs with remarks and the tag profiler attached.
  CompilerConfig On;
  On.Analysis = AnalysisKind::ModRef;
  RemarkEngine Re;
  On.Remarks = &Re;
  CompileOutput Out = compileProgram(Src, On);
  if (!Out.Ok) {
    std::fprintf(stderr, "error: %s failed to compile: %s\n", Name.c_str(),
                 Out.Errors.c_str());
    return 1;
  }
  ProfileMeta Meta = ProfileMeta::build(*Out.M);
  InterpOptions IO;
  IO.Profile = &Meta;
  ExecResult With = interpret(*Out.M, IO);
  if (!With.Ok) {
    std::fprintf(stderr, "error: %s failed to run: %s\n", Name.c_str(),
                 With.Error.c_str());
    return 1;
  }

  std::vector<ExplainRow> Rows =
      buildExplainReport(*Out.M, Meta, With.Profile, Re);
  uint64_t ResidualLoads = 0, ResidualStores = 0;
  size_t Unexplained = 0;
  for (const ExplainRow &R : Rows) {
    ResidualLoads += R.Loads;
    ResidualStores += R.Stores;
    if (!R.Joined)
      ++Unexplained;
  }

  std::printf("== %s ==\n", Name.c_str());
  std::printf("  Figure 6 delta (stores removed): %lld\n",
              static_cast<long long>(Without.Counters.Stores) -
                  static_cast<long long>(With.Counters.Stores));
  std::printf("  Figure 7 delta (loads removed):  %lld\n",
              static_cast<long long>(Without.Counters.Loads) -
                  static_cast<long long>(With.Counters.Loads));
  std::printf("  residual in-loop promotable traffic: %llu load(s), "
              "%llu store(s) across %zu row(s)\n",
              static_cast<unsigned long long>(ResidualLoads),
              static_cast<unsigned long long>(ResidualStores), Rows.size());
  if (Rows.empty()) {
    std::printf("  (nothing left on the table)\n\n");
    return 0;
  }
  std::fputs(formatExplainReport(Rows).c_str(), stdout);
  if (Unexplained) {
    std::printf("error: %zu row(s) have no blocking remark — the remark "
                "stream is incomplete\n\n",
                Unexplained);
    return 1;
  }
  std::printf("  every row joins a blocking reason code\n\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Names;
  for (int I = 1; I < argc; ++I)
    Names.push_back(argv[I]);
  if (Names.empty())
    Names = benchProgramNames();

  std::printf("Promotion left on the table (MOD/REF analysis, scalar "
              "promotion on)\n\n");
  int RC = 0;
  for (const std::string &Name : Names)
    RC |= explainOne(Name);
  return RC;
}
