//===- bench/Fig7Loads.cpp - Paper Figure 7: loads executed ---------------===//

#include "SuiteTable.h"

int main(int argc, char **argv) {
  return rpcc::runSuiteTable(rpcc::Metric::Loads, "Figure 7: Loads",
                             rpcc::suiteTableJobs(argc, argv));
}
