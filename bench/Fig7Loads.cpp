//===- bench/Fig7Loads.cpp - Paper Figure 7: loads executed ---------------===//

#include "SuiteTable.h"

int main() {
  return rpcc::runSuiteTable(rpcc::Metric::Loads, "Figure 7: Loads");
}
