//===- bench/Fig5TotalOps.cpp - Paper Figure 5: total operations ----------===//
//
// Regenerates the paper's Figure 5: dynamic total-operation counts for the
// benchmark suite, without and with scalar register promotion, under
// MOD/REF and points-to analysis.
//
//===----------------------------------------------------------------------===//

#include "SuiteTable.h"

int main(int argc, char **argv) {
  return rpcc::runSuiteTable(rpcc::Metric::TotalOps,
                             "Figure 5: Total Operations",
                             rpcc::suiteTableJobs(argc, argv));
}
