//===- bench/Fig4Programs.cpp - Paper Figure 4: program descriptions ------===//
//
// Prints the benchmark suite in the style of the paper's Figure 4:
// program, line count, and description, plus a static instruction census
// from the compiled IL.
//
//===----------------------------------------------------------------------===//

#include "driver/SuiteRunner.h"
#include "frontend/Lowering.h"
#include "support/Format.h"

#include <cstdio>
#include <map>

using namespace rpcc;

namespace {

const std::map<std::string, const char *> &descriptions() {
  static const std::map<std::string, const char *> D = {
      {"tsp", "a traveling salesman problem"},
      {"mlink", "genetic linkage likelihood computation"},
      {"fft", "fast Fourier transform"},
      {"clean", "text cleaner (whitespace squeezing)"},
      {"sim", "local sequence alignment"},
      {"dhrystone", "synthetic integer benchmark"},
      {"water", "molecular-dynamics force accumulation"},
      {"indent", "prettyprinter for C programs"},
      {"allroots", "polynomial root-finder"},
      {"bc", "calculator (stack-machine core)"},
      {"go", "game program (board scanning)"},
      {"bison", "LR(1) parser driver and closures"},
      {"gzip_enc", "file compression (LZ77 hash chains)"},
      {"gzip_dec", "file decompression"},
  };
  return D;
}

size_t countLines(const std::string &S) {
  size_t N = 0;
  for (char C : S)
    N += C == '\n';
  return N;
}

} // namespace

int main() {
  std::printf("Figure 4: Program Descriptions\n");
  std::printf("(MiniC reimplementations recreating each paper program's "
              "memory-access shape)\n\n");
  TextTable T({"program", "lines", "IL instructions", "functions",
               "description"});
  for (const std::string &Name : benchProgramNames()) {
    std::string Src = loadBenchProgram(Name);
    Module M;
    std::string Err;
    if (!compileToIL(Src, M, Err)) {
      std::fprintf(stderr, "error compiling %s:\n%s", Name.c_str(),
                   Err.c_str());
      return 1;
    }
    uint64_t Insts = 0;
    unsigned Funcs = 0;
    for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
      const Function *F = M.function(static_cast<FuncId>(FI));
      if (F->isBuiltin() || !F->numBlocks())
        continue;
      ++Funcs;
      for (const auto &B : F->blocks())
        Insts += B->size();
    }
    auto It = descriptions().find(Name);
    T.addRow({Name, std::to_string(countLines(Src)), withCommas(Insts),
              std::to_string(Funcs),
              It != descriptions().end() ? It->second : ""});
  }
  std::fputs(T.render().c_str(), stdout);
  return 0;
}
