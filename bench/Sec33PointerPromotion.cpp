//===- bench/Sec33PointerPromotion.cpp - Paper §3.3 ablation --------------===//
//
// The paper's §3.3 verdict on pointer-based promotion: "pointer-based
// promotion hurt performance for one program and had no effect on nine
// others... In fft, the only significant success, pointer-based promotion
// was able to remove 48.3% more operations... than scalar promotion was
// able to remove." This binary runs the suite with scalar promotion alone
// and with §3.3 pointer-based promotion added, under points-to analysis.
//
//===----------------------------------------------------------------------===//

#include "driver/SuiteRunner.h"
#include "support/Format.h"

#include <cstdio>

using namespace rpcc;

int main() {
  std::printf("Section 3.3: Pointer-Based Promotion (ablation)\n");
  std::printf("(points-to analysis; scalar promotion alone vs. scalar + "
              "pointer-based)\n\n");
  TextTable T({"program", "total scalar", "total +ptr", "extra removed",
               "loads removed", "stores removed"});
  for (const std::string &Name : benchProgramNames()) {
    std::string Src = loadBenchProgram(Name);
    ExecResult R[2];
    bool Ok = true;
    for (int PP = 0; PP != 2; ++PP) {
      CompilerConfig Cfg;
      Cfg.Analysis = AnalysisKind::PointsTo;
      Cfg.ScalarPromotion = true;
      Cfg.PointerPromotion = PP == 1;
      R[PP] = compileAndRun(Src, Cfg);
      Ok &= R[PP].Ok;
    }
    if (!Ok || R[0].Output != R[1].Output) {
      std::fprintf(stderr, "error: %s failed or diverged\n", Name.c_str());
      return 1;
    }
    auto D = [](uint64_t A, uint64_t B) {
      return withCommasSigned(static_cast<int64_t>(A) -
                              static_cast<int64_t>(B));
    };
    T.addRow({Name, withCommas(R[0].Counters.Total),
              withCommas(R[1].Counters.Total),
              D(R[0].Counters.Total, R[1].Counters.Total),
              D(R[0].Counters.Loads, R[1].Counters.Loads),
              D(R[0].Counters.Stores, R[1].Counters.Stores)});
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\nExpected shape: fft is the standout (its scale_pass kernel "
              "re-references\ninvariant addresses); most other programs move "
              "by well under 1%%, and a\nfew tick slightly negative — the "
              "paper's own disappointed verdict on §3.3.\n");
  return 0;
}
