file(REMOVE_RECURSE
  "librpcc.a"
)
