
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alias/ModRef.cpp" "src/CMakeFiles/rpcc.dir/alias/ModRef.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/alias/ModRef.cpp.o.d"
  "/root/repo/src/alias/PointsTo.cpp" "src/CMakeFiles/rpcc.dir/alias/PointsTo.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/alias/PointsTo.cpp.o.d"
  "/root/repo/src/alias/TagRefine.cpp" "src/CMakeFiles/rpcc.dir/alias/TagRefine.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/alias/TagRefine.cpp.o.d"
  "/root/repo/src/analysis/CallGraph.cpp" "src/CMakeFiles/rpcc.dir/analysis/CallGraph.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/analysis/CallGraph.cpp.o.d"
  "/root/repo/src/analysis/Cfg.cpp" "src/CMakeFiles/rpcc.dir/analysis/Cfg.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/analysis/Cfg.cpp.o.d"
  "/root/repo/src/analysis/CfgNormalize.cpp" "src/CMakeFiles/rpcc.dir/analysis/CfgNormalize.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/analysis/CfgNormalize.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/CMakeFiles/rpcc.dir/analysis/Dominators.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/CMakeFiles/rpcc.dir/analysis/Liveness.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/analysis/Liveness.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/CMakeFiles/rpcc.dir/analysis/LoopInfo.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/analysis/LoopInfo.cpp.o.d"
  "/root/repo/src/driver/Compiler.cpp" "src/CMakeFiles/rpcc.dir/driver/Compiler.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/driver/Compiler.cpp.o.d"
  "/root/repo/src/driver/SuiteRunner.cpp" "src/CMakeFiles/rpcc.dir/driver/SuiteRunner.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/driver/SuiteRunner.cpp.o.d"
  "/root/repo/src/frontend/Ast.cpp" "src/CMakeFiles/rpcc.dir/frontend/Ast.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/frontend/Ast.cpp.o.d"
  "/root/repo/src/frontend/Lexer.cpp" "src/CMakeFiles/rpcc.dir/frontend/Lexer.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/frontend/Lexer.cpp.o.d"
  "/root/repo/src/frontend/Lowering.cpp" "src/CMakeFiles/rpcc.dir/frontend/Lowering.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/frontend/Lowering.cpp.o.d"
  "/root/repo/src/frontend/Parser.cpp" "src/CMakeFiles/rpcc.dir/frontend/Parser.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/frontend/Parser.cpp.o.d"
  "/root/repo/src/frontend/Sema.cpp" "src/CMakeFiles/rpcc.dir/frontend/Sema.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/frontend/Sema.cpp.o.d"
  "/root/repo/src/frontend/Type.cpp" "src/CMakeFiles/rpcc.dir/frontend/Type.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/frontend/Type.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/rpcc.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/ir/BasicBlock.cpp" "src/CMakeFiles/rpcc.dir/ir/BasicBlock.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/ir/BasicBlock.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/CMakeFiles/rpcc.dir/ir/Function.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/ir/Function.cpp.o.d"
  "/root/repo/src/ir/ILParser.cpp" "src/CMakeFiles/rpcc.dir/ir/ILParser.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/ir/ILParser.cpp.o.d"
  "/root/repo/src/ir/IRBuilder.cpp" "src/CMakeFiles/rpcc.dir/ir/IRBuilder.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/ir/IRBuilder.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/CMakeFiles/rpcc.dir/ir/IRPrinter.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/ir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/Instruction.cpp" "src/CMakeFiles/rpcc.dir/ir/Instruction.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/ir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/CMakeFiles/rpcc.dir/ir/Module.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/ir/Module.cpp.o.d"
  "/root/repo/src/ir/Tag.cpp" "src/CMakeFiles/rpcc.dir/ir/Tag.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/ir/Tag.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/rpcc.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/opt/Cleanup.cpp" "src/CMakeFiles/rpcc.dir/opt/Cleanup.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/opt/Cleanup.cpp.o.d"
  "/root/repo/src/opt/CopyProp.cpp" "src/CMakeFiles/rpcc.dir/opt/CopyProp.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/opt/CopyProp.cpp.o.d"
  "/root/repo/src/opt/Dce.cpp" "src/CMakeFiles/rpcc.dir/opt/Dce.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/opt/Dce.cpp.o.d"
  "/root/repo/src/opt/Licm.cpp" "src/CMakeFiles/rpcc.dir/opt/Licm.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/opt/Licm.cpp.o.d"
  "/root/repo/src/opt/Pre.cpp" "src/CMakeFiles/rpcc.dir/opt/Pre.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/opt/Pre.cpp.o.d"
  "/root/repo/src/opt/Sccp.cpp" "src/CMakeFiles/rpcc.dir/opt/Sccp.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/opt/Sccp.cpp.o.d"
  "/root/repo/src/opt/ValueNumbering.cpp" "src/CMakeFiles/rpcc.dir/opt/ValueNumbering.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/opt/ValueNumbering.cpp.o.d"
  "/root/repo/src/promote/PointerPromotion.cpp" "src/CMakeFiles/rpcc.dir/promote/PointerPromotion.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/promote/PointerPromotion.cpp.o.d"
  "/root/repo/src/promote/ScalarPromotion.cpp" "src/CMakeFiles/rpcc.dir/promote/ScalarPromotion.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/promote/ScalarPromotion.cpp.o.d"
  "/root/repo/src/regalloc/GraphColoring.cpp" "src/CMakeFiles/rpcc.dir/regalloc/GraphColoring.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/regalloc/GraphColoring.cpp.o.d"
  "/root/repo/src/regalloc/Liverange.cpp" "src/CMakeFiles/rpcc.dir/regalloc/Liverange.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/regalloc/Liverange.cpp.o.d"
  "/root/repo/src/support/Format.cpp" "src/CMakeFiles/rpcc.dir/support/Format.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/support/Format.cpp.o.d"
  "/root/repo/src/support/StringInterner.cpp" "src/CMakeFiles/rpcc.dir/support/StringInterner.cpp.o" "gcc" "src/CMakeFiles/rpcc.dir/support/StringInterner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
