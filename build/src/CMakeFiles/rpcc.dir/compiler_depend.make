# Empty compiler generated dependencies file for rpcc.
# This may be replaced when dependencies are built.
