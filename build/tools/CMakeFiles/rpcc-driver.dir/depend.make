# Empty dependencies file for rpcc-driver.
# This may be replaced when dependencies are built.
