file(REMOVE_RECURSE
  "CMakeFiles/rpcc-driver.dir/rpcc.cpp.o"
  "CMakeFiles/rpcc-driver.dir/rpcc.cpp.o.d"
  "rpcc"
  "rpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcc-driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
