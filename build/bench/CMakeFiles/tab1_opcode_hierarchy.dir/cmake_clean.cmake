file(REMOVE_RECURSE
  "CMakeFiles/tab1_opcode_hierarchy.dir/Tab1OpcodeHierarchy.cpp.o"
  "CMakeFiles/tab1_opcode_hierarchy.dir/Tab1OpcodeHierarchy.cpp.o.d"
  "tab1_opcode_hierarchy"
  "tab1_opcode_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_opcode_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
