# Empty dependencies file for tab1_opcode_hierarchy.
# This may be replaced when dependencies are built.
