file(REMOVE_RECURSE
  "CMakeFiles/fig4_programs.dir/Fig4Programs.cpp.o"
  "CMakeFiles/fig4_programs.dir/Fig4Programs.cpp.o.d"
  "fig4_programs"
  "fig4_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
