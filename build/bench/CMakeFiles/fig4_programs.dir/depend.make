# Empty dependencies file for fig4_programs.
# This may be replaced when dependencies are built.
