file(REMOVE_RECURSE
  "CMakeFiles/fig6_stores.dir/Fig6Stores.cpp.o"
  "CMakeFiles/fig6_stores.dir/Fig6Stores.cpp.o.d"
  "fig6_stores"
  "fig6_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
