# Empty dependencies file for fig6_stores.
# This may be replaced when dependencies are built.
