# Empty dependencies file for fig5_total_ops.
# This may be replaced when dependencies are built.
