file(REMOVE_RECURSE
  "CMakeFiles/fig5_total_ops.dir/Fig5TotalOps.cpp.o"
  "CMakeFiles/fig5_total_ops.dir/Fig5TotalOps.cpp.o.d"
  "fig5_total_ops"
  "fig5_total_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_total_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
