# Empty compiler generated dependencies file for fig7_loads.
# This may be replaced when dependencies are built.
