file(REMOVE_RECURSE
  "CMakeFiles/fig7_loads.dir/Fig7Loads.cpp.o"
  "CMakeFiles/fig7_loads.dir/Fig7Loads.cpp.o.d"
  "fig7_loads"
  "fig7_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
