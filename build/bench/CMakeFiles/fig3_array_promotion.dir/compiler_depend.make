# Empty compiler generated dependencies file for fig3_array_promotion.
# This may be replaced when dependencies are built.
