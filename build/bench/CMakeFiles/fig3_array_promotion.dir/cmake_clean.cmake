file(REMOVE_RECURSE
  "CMakeFiles/fig3_array_promotion.dir/Fig3ArrayPromotion.cpp.o"
  "CMakeFiles/fig3_array_promotion.dir/Fig3ArrayPromotion.cpp.o.d"
  "fig3_array_promotion"
  "fig3_array_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_array_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
