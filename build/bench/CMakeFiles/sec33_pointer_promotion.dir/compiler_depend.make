# Empty compiler generated dependencies file for sec33_pointer_promotion.
# This may be replaced when dependencies are built.
