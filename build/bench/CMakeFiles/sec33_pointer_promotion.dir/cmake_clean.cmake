file(REMOVE_RECURSE
  "CMakeFiles/sec33_pointer_promotion.dir/Sec33PointerPromotion.cpp.o"
  "CMakeFiles/sec33_pointer_promotion.dir/Sec33PointerPromotion.cpp.o.d"
  "sec33_pointer_promotion"
  "sec33_pointer_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec33_pointer_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
