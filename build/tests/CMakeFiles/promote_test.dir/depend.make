# Empty dependencies file for promote_test.
# This may be replaced when dependencies are built.
