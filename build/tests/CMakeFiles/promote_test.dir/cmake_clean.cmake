file(REMOVE_RECURSE
  "CMakeFiles/promote_test.dir/PromoteTest.cpp.o"
  "CMakeFiles/promote_test.dir/PromoteTest.cpp.o.d"
  "promote_test"
  "promote_test.pdb"
  "promote_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
