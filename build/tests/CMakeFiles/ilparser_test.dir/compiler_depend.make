# Empty compiler generated dependencies file for ilparser_test.
# This may be replaced when dependencies are built.
