file(REMOVE_RECURSE
  "CMakeFiles/ilparser_test.dir/ILParserTest.cpp.o"
  "CMakeFiles/ilparser_test.dir/ILParserTest.cpp.o.d"
  "ilparser_test"
  "ilparser_test.pdb"
  "ilparser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilparser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
