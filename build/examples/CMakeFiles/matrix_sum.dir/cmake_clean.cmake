file(REMOVE_RECURSE
  "CMakeFiles/matrix_sum.dir/matrix_sum.cpp.o"
  "CMakeFiles/matrix_sum.dir/matrix_sum.cpp.o.d"
  "matrix_sum"
  "matrix_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
