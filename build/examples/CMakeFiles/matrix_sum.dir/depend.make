# Empty dependencies file for matrix_sum.
# This may be replaced when dependencies are built.
