# Empty compiler generated dependencies file for opt_pipeline.
# This may be replaced when dependencies are built.
